#include "bench_util/harness.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

#include "graph/csr.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "racecheck/racecheck.hpp"
#include "sched/executor.hpp"
#include "sched/job_graph.hpp"
#include "threading/thread_team.hpp"
#include "variants/register_all.hpp"
#include "vcuda/residency.hpp"
#include "vcuda/sim.hpp"

namespace indigo::bench {
namespace {

std::atomic<int> g_shape_failures{0};

std::string scale_tag() {
  const char* env = std::getenv("REPRO_SCALE");
  return env != nullptr ? env : "1";
}

std::string make_key(const std::string& program, const std::string& graph,
                     const std::string& device, int threads, int reps) {
  std::ostringstream os;
  os << program << '|' << graph << '|' << device << '|' << threads << '|'
     << scale_tag();
  // Instrumented runs carry counter payloads and must not shadow (or be
  // shadowed by) plain timing entries recorded without them.
  if (obs::enabled()) os << "|obs";
  // Same reasoning for racecheck.* audit payloads.
  if (racecheck::enabled()) os << "|rc";
  // Multi-rep entries (median of N, per-rep metric averages) are distinct
  // from single-shot ones. reps==1 keeps the historical key shape so
  // existing journals stay valid.
  if (reps > 1) os << "|r" << reps;
  return os.str();
}

std::string device_name_of(const Variant& v, const vcuda::DeviceSpec* device) {
  return v.model == Model::Cuda
             ? (device != nullptr ? device->name : "rtx3090_like")
             : "cpu";
}

/// Sweep-level robustness knobs (documented in docs/SWEEP_RUNTIME.md).
int env_retries() {
  if (const char* env = std::getenv("INDIGO_SCHED_RETRIES")) {
    return std::max(0, std::atoi(env));
  }
  return 1;
}

double env_timeout_s() {
  if (const char* env = std::getenv("INDIGO_SCHED_TIMEOUT_S")) {
    return std::max(0.0, std::atof(env));
  }
  return 0;  // measurements have no deadline unless asked for
}

/// opts.workers == -1 defers to INDIGO_SCHED_WORKERS, where 0 selects the
/// plain sequential loop and unset means "scheduler with its default pool".
int resolve_sweep_workers(int requested) {
  if (requested >= 0) return requested;
  if (const char* env = std::getenv("INDIGO_SCHED_WORKERS")) {
    return std::max(0, std::atoi(env));
  }
  return sched::Executor::resolve_workers(0);
}

}  // namespace

Harness::Harness() : Harness(DeferGraphs{}) {
  for (std::size_t i = 0; i < graphs_.size(); ++i) materialize_graph(i);
}

Harness::Harness(DeferGraphs) {
  variants::register_all_variants();
  obs::init_from_env();
  graphs_.resize(std::size(kAllInputs));
  materialized_.assign(graphs_.size(), false);
  verifiers_.resize(graphs_.size());
  const char* env = std::getenv("REPRO_CACHE");
  store_ = std::make_unique<sched::ResultStore>(
      env != nullptr ? env : "repro_cache.csv");
}

void Harness::materialize_graph(std::size_t i) {
  std::lock_guard lk(graphs_mu_);
  if (materialized_[i]) return;
  obs::Span span("materialize_graph", "harness");
  const InputClass c = kAllInputs[i];
  graphs_[i] = make_input(c, default_input_scale(c));
  span.arg("graph", graphs_[i].name());
  materialized_[i] = true;
}

const std::vector<Graph>& Harness::graphs() {
  for (std::size_t i = 0; i < graphs_.size(); ++i) materialize_graph(i);
  return graphs_;
}

std::string Harness::key_for(const Variant& v, const Graph& g,
                             const vcuda::DeviceSpec* device, int reps) const {
  return make_key(v.name, g.name(), device_name_of(v, device), cpu_threads(),
                  reps);
}

bool Harness::cached(const Variant& v, const Graph& g,
                     const vcuda::DeviceSpec* device, int reps) const {
  return store_->find(key_for(v, g, device, reps)).has_value();
}

Verifier& Harness::verifier_for(const Graph& g) {
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    if (&graphs_[i] == &g) {
      std::lock_guard lk(verifiers_mu_);
      if (!verifiers_[i]) verifiers_[i] = std::make_unique<Verifier>(g, 0);
      return *verifiers_[i];
    }
  }
  throw std::logic_error("verifier_for: unknown graph");
}

RunOptions Harness::base_run_options(const vcuda::DeviceSpec* device) const {
  RunOptions opts;
  opts.source = 0;
  opts.num_threads = cpu_threads();
  opts.device = device;
  opts.racecheck = racecheck::enabled();
  return opts;
}

namespace {

/// One Measurement as a JSONL run record (docs/OBSERVABILITY.md schema).
void export_measurement(const Measurement& m, const std::string& dev_name,
                        bool from_cache) {
  if (obs::metrics_path().empty()) return;
  obs::JsonObject rec;
  rec.field("program", m.program)
      .field("model", to_string(m.model))
      .field("algo", to_string(m.algo))
      .field("graph", m.graph)
      .field("device", dev_name)
      .field("seconds", m.seconds)
      .field("throughput_ges", m.throughput_ges)
      .field("iterations", static_cast<std::uint64_t>(m.iterations))
      .field("verified", m.verified)
      .field("from_cache", from_cache);
  if (!m.error.empty()) rec.field("error", m.error);
  rec.field_raw("metrics", obs::json_of_metrics(m.metrics));
  obs::append_metrics_record(rec.str());
}

}  // namespace

Measurement Harness::measure_one(const Variant& v, const Graph& g,
                                 const vcuda::DeviceSpec* device, int reps) {
  const std::string dev_name = device_name_of(v, device);
  const std::string key =
      make_key(v.name, g.name(), dev_name, cpu_threads(), reps);
  if (const auto e = store_->find(key)) {
    Measurement m;
    m.program = v.name;
    m.model = v.model;
    m.algo = v.algo;
    m.style = v.style;
    m.graph = g.name();
    m.seconds = e->seconds;
    m.throughput_ges = e->throughput;
    m.iterations = e->iterations;
    m.verified = e->verified;
    m.metrics = e->metrics;
    if (!e->verified) m.error = "cached failure";
    export_measurement(m, dev_name, /*from_cache=*/true);
    return m;
  }
  const RunOptions opts = base_run_options(device);
  Measurement m;
  // Cuda variants read their graph through the thread's residency cache:
  // consecutive cells on the same graph reuse the resident copy instead of
  // touching a cold mapping. Invisible to the model — Device::array
  // translates the pointers before assigning recording bases — so journal
  // bytes are identical with residency on or off.
  struct ResidencyGuard {
    bool active = false;
    ~ResidencyGuard() {
      if (active) vcuda::thread_residency().unbind();
    }
  } residency_guard;
  if (v.model == Model::Cuda && vcuda::residency_enabled()) {
    const auto spans = device_buffer_spans(g);
    vcuda::thread_residency().bind(
        reinterpret_cast<std::uintptr_t>(static_cast<const void*>(&g)),
        spans);
    residency_guard.active = true;
  }
  try {
    m = measure(v, g, opts, reps, verifier_for(g));
  } catch (const vcuda::DeviceOomError& ex) {
    // A modeled capacity rejection, not a code failure: record it as a
    // validity outcome. The metrics map is journaled, so the OOM survives
    // kill/resume and shows up in sweep summaries deterministically.
    m.program = v.name;
    m.model = v.model;
    m.algo = v.algo;
    m.style = v.style;
    m.graph = g.name();
    m.verified = false;
    m.error = ex.what();
    m.metrics["validity.oom"] = 1.0;
    m.metrics["validity.oom_footprint_bytes"] =
        static_cast<double>(ex.footprint_bytes());
  } catch (const std::exception& ex) {
    m.program = v.name;
    m.model = v.model;
    m.algo = v.algo;
    m.style = v.style;
    m.graph = g.name();
    m.verified = false;
    m.error = ex.what();
  }
  store_->put(key, {m.seconds, m.throughput_ges, m.iterations, m.verified,
                    m.metrics});
  export_measurement(m, dev_name, /*from_cache=*/false);
  if (!m.verified) {
    std::cerr << "\n[warn] " << m.program << " on " << m.graph
              << " failed verification: " << m.error << '\n';
  }
  return m;
}

std::vector<Measurement> Harness::sweep(const SweepOptions& opts) {
  obs::Span span("sweep", "harness");
  // Ambient enable for the whole sweep: measure_one (and the vcuda Devices
  // constructed inside the variants) read the global flag.
  racecheck::ScopedEnable rc_scope(opts.racecheck);
  const auto selected = Registry::instance().select(opts.model, opts.algo);
  graphs();  // materialize any deferred inputs before enumerating pairs
  struct Pair {
    const Variant* v;
    const Graph* g;
    std::size_t gi;  // graph index, the scheduler's affinity key
  };
  std::vector<Pair> pairs;
  for (const Variant* v : selected) {
    if (opts.style_filter && !opts.style_filter(*v)) continue;
    for (std::size_t gi = 0; gi < graphs_.size(); ++gi) {
      pairs.push_back({v, &graphs_[gi], gi});
    }
  }

  SweepStats stats;
  stats.pairs = pairs.size();
  std::vector<Measurement> out;
  out.reserve(pairs.size());
  const int workers = resolve_sweep_workers(opts.workers);

  if (workers == 0) {
    // The plain sequential loop: the scheduler bypassed entirely. Kept as
    // the reference path the scheduled one must reproduce bit-identically
    // (tests/test_sched.cpp) and as the --bench baseline.
    std::size_t done = 0;
    for (const Pair& p : pairs) {
      if (store_->find(key_for(*p.v, *p.g, opts.device, opts.reps))) {
        ++stats.cache_hits;
      } else {
        ++stats.executed;
      }
      out.push_back(measure_one(*p.v, *p.g, opts.device, opts.reps));
      if (++done % 50 == 0) std::cerr << '.' << std::flush;
    }
    if (done >= 50) std::cerr << '\n';
  } else {
    // Thin client of the sweep runtime: one job per pair missing from the
    // journal. Model-timed vcuda jobs share the pool; wall-clock CPU jobs
    // (and every job of an instrumented sweep, whose counter deltas must
    // not interleave) take the exclusive lane.
    sched::JobGraph jg;
    std::vector<std::optional<Measurement>> slots(pairs.size());
    std::vector<sched::JobId> job_of(pairs.size(), sched::kInvalidJob);
    std::atomic<std::size_t> dots{0};
    const int retries = env_retries();
    const double timeout_s = env_timeout_s();
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const Pair& p = pairs[i];
      if (store_->find(key_for(*p.v, *p.g, opts.device, opts.reps))) {
        ++stats.cache_hits;
        continue;
      }
      sched::Job j;
      j.name = p.v->name + "@" + p.g->name();
      j.exec_class =
          p.v->model == Model::Cuda && !obs::enabled() && !racecheck::enabled()
              ? sched::ExecClass::ModelTimed
              : sched::ExecClass::WallClock;
      // Same-graph jobs seed onto the same worker so its residency cache
      // (and arena shapes) stay warm across consecutive cells.
      j.affinity = static_cast<std::int64_t>(p.gi);
      j.timeout_s = timeout_s;
      j.max_retries = retries;
      j.work = [this, i, &slots, &pairs, &opts,
                &dots](const sched::JobContext&) {
        const Pair& q = pairs[i];
        slots[i] = measure_one(*q.v, *q.g, opts.device, opts.reps);
        if ((dots.fetch_add(1, std::memory_order_relaxed) + 1) % 50 == 0) {
          std::cerr << '.' << std::flush;
        }
      };
      job_of[i] = jg.add(std::move(j));
    }
    std::vector<sched::JobStatus> statuses;
    if (jg.size() > 0) {
      sched::ExecutorOptions eo;
      eo.num_workers = workers;
      statuses = sched::Executor(eo).run(jg);
    }
    if (dots.load() >= 50) std::cerr << '\n';
    // Merge in deterministic pair order, independent of completion order.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (slots[i]) {
        ++stats.executed;
        out.push_back(std::move(*slots[i]));
        continue;
      }
      if (job_of[i] == sched::kInvalidJob) {
        out.push_back(  // journal hit; resolves without running anything
            measure_one(*pairs[i].v, *pairs[i].g, opts.device, opts.reps));
        continue;
      }
      // The job never produced a measurement: quarantined (hung or threw
      // outside measure_one's own catch). Record-and-exclude, like the
      // paper excludes failed runs; downstream filters on `verified`.
      ++stats.quarantined;
      const Pair& p = pairs[i];
      const sched::JobStatus& st = statuses[job_of[i]];
      Measurement m;
      m.program = p.v->name;
      m.model = p.v->model;
      m.algo = p.v->algo;
      m.style = p.v->style;
      m.graph = p.g->name();
      m.verified = false;
      m.error = "quarantined: " + st.error;
      // Leave an audit trail in the journal (as a comment, so a resumed
      // sweep still retries the pair) pointing at the flight dump the
      // executor took when the last attempt failed.
      store_->annotate("quarantined " + p.v->name + "@" + m.graph + " after " +
                       std::to_string(st.attempts) + " attempt(s): " +
                       st.error +
                       (st.flight_dump.empty()
                            ? std::string()
                            : " (flight dump: " + st.flight_dump + ")"));
      std::cerr << "\n[warn] " << m.program << " on " << m.graph << ' '
                << m.error;
      if (!st.flight_dump.empty()) {
        std::cerr << " (flight dump: " << st.flight_dump << ')';
      }
      std::cerr << '\n';
      out.push_back(std::move(m));
    }
  }
  // Capacity rejections are a validity outcome, not an error: count them
  // from the (journal-stable) metrics so resumes report the same number.
  for (const Measurement& m : out) {
    if (m.metrics.count("validity.oom") != 0) ++stats.oom_rejected;
  }
  stats_ = stats;
  span.arg("measurements", static_cast<double>(pairs.size()));
  span.arg("cache_hits", static_cast<double>(stats.cache_hits));
  span.arg("executed", static_cast<double>(stats.executed));
  span.arg("oom_rejected", static_cast<double>(stats.oom_rejected));
  return out;
}

std::vector<double> pairwise_ratios(std::span<const Measurement> ms,
                                    Algorithm algo, Dimension d, int value_a,
                                    int value_b) {
  // Index verified measurements by (style-with-d-cleared, graph).
  std::map<std::pair<std::string, int>, double> table;
  auto key_of = [&](const Measurement& m) {
    StyleConfig base = with_dimension(m.style, d, 0);
    return std::pair<std::string, int>(
        m.graph + "#" + program_name(m.model, m.algo, base),
        get_dimension(m.style, d));
  };
  for (const Measurement& m : ms) {
    if (m.algo != algo || !m.verified) continue;
    table[key_of(m)] = m.throughput_ges;
  }
  std::vector<double> ratios;
  for (const auto& [key, thr_a] : table) {
    if (key.second != value_a) continue;
    const auto it = table.find({key.first, value_b});
    if (it == table.end() || it->second <= 0.0) continue;
    ratios.push_back(thr_a / it->second);
  }
  return ratios;
}

std::vector<stats::NamedSample> ratio_samples_by_algorithm(
    std::span<const Measurement> ms, std::span<const Algorithm> algos,
    Dimension d, int value_a, int value_b) {
  std::vector<stats::NamedSample> samples;
  for (Algorithm a : algos) {
    stats::NamedSample s;
    s.label = to_string(a);
    s.values = pairwise_ratios(ms, a, d, value_a, value_b);
    samples.push_back(std::move(s));
  }
  return samples;
}

std::vector<Measurement> verified_of_model(std::span<const Measurement> ms,
                                           Model m) {
  std::vector<Measurement> out;
  for (const Measurement& x : ms) {
    if (x.model == m && x.verified) out.push_back(x);
  }
  return out;
}

bool shape_check(const std::string& name, bool condition) {
  if (!condition) g_shape_failures.fetch_add(1, std::memory_order_relaxed);
  std::cout << (condition ? "[SHAPE PASS] " : "[SHAPE DIFF] ") << name
            << '\n';
  return condition;
}

int shape_check_failures() {
  return g_shape_failures.load(std::memory_order_relaxed);
}

int exit_code() { return shape_check_failures() == 0 ? 0 : 1; }

bool classic_atomics_only(const Variant& v) {
  return v.style.alib == AtomicsLib::Classic;
}

}  // namespace indigo::bench
