#include "bench_util/harness.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "threading/thread_team.hpp"
#include "variants/register_all.hpp"

namespace indigo::bench {
namespace {

std::string scale_tag() {
  const char* env = std::getenv("REPRO_SCALE");
  return env != nullptr ? env : "1";
}

std::string make_key(const std::string& program, const std::string& graph,
                     const std::string& device, int threads) {
  std::ostringstream os;
  os << program << '|' << graph << '|' << device << '|' << threads << '|'
     << scale_tag();
  return os.str();
}

}  // namespace

Harness::Harness() {
  variants::register_all_variants();
  graphs_ = make_study_inputs();
  verifiers_.resize(graphs_.size());
  const char* env = std::getenv("REPRO_CACHE");
  cache_path_ = env != nullptr ? env : "repro_cache.csv";
  if (cache_path_.empty()) return;
  std::ifstream in(cache_path_);
  std::string line;
  while (std::getline(in, line)) {
    // key \t seconds \t throughput \t iterations \t verified
    std::istringstream ls(line);
    std::string key;
    CacheEntry e{};
    int verified = 0;
    if (std::getline(ls, key, '\t') &&
        (ls >> e.seconds >> e.throughput >> e.iterations >> verified)) {
      e.verified = verified != 0;
      cache_[key] = e;
    }
  }
}

Harness::CacheEntry* Harness::cache_find(const std::string& key) {
  const auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : &it->second;
}

void Harness::cache_append(const std::string& key, const CacheEntry& e) {
  cache_[key] = e;
  if (cache_path_.empty()) return;
  std::ofstream out(cache_path_, std::ios::app);
  out.precision(17);  // doubles must round-trip exactly
  out << key << '\t' << e.seconds << '\t' << e.throughput << '\t'
      << e.iterations << '\t' << (e.verified ? 1 : 0) << '\n';
}

Verifier& Harness::verifier_for(const Graph& g) {
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    if (&graphs_[i] == &g) {
      if (!verifiers_[i]) verifiers_[i] = std::make_unique<Verifier>(g, 0);
      return *verifiers_[i];
    }
  }
  throw std::logic_error("verifier_for: unknown graph");
}

RunOptions Harness::base_run_options(const vcuda::DeviceSpec* device) const {
  RunOptions opts;
  opts.source = 0;
  opts.num_threads = cpu_threads();
  opts.device = device;
  return opts;
}

Measurement Harness::measure_one(const Variant& v, const Graph& g,
                                 const vcuda::DeviceSpec* device, int reps) {
  const std::string dev_name =
      v.model == Model::Cuda
          ? (device != nullptr ? device->name : "rtx3090_like")
          : "cpu";
  const std::string key = make_key(v.name, g.name(), dev_name, cpu_threads());
  if (CacheEntry* e = cache_find(key)) {
    Measurement m;
    m.program = v.name;
    m.model = v.model;
    m.algo = v.algo;
    m.style = v.style;
    m.graph = g.name();
    m.seconds = e->seconds;
    m.throughput_ges = e->throughput;
    m.iterations = e->iterations;
    m.verified = e->verified;
    if (!e->verified) m.error = "cached failure";
    return m;
  }
  const RunOptions opts = base_run_options(device);
  Measurement m;
  try {
    m = measure(v, g, opts, reps, verifier_for(g));
  } catch (const std::exception& ex) {
    m.program = v.name;
    m.model = v.model;
    m.algo = v.algo;
    m.style = v.style;
    m.graph = g.name();
    m.verified = false;
    m.error = ex.what();
  }
  cache_append(key, {m.seconds, m.throughput_ges, m.iterations, m.verified});
  if (!m.verified) {
    std::cerr << "\n[warn] " << m.program << " on " << m.graph
              << " failed verification: " << m.error << '\n';
  }
  return m;
}

std::vector<Measurement> Harness::sweep(const SweepOptions& opts) {
  const auto selected = Registry::instance().select(opts.model, opts.algo);
  std::vector<Measurement> out;
  std::size_t done = 0;
  for (const Variant* v : selected) {
    if (opts.style_filter && !opts.style_filter(*v)) continue;
    for (const Graph& g : graphs_) {
      out.push_back(measure_one(*v, g, opts.device, opts.reps));
      if (++done % 50 == 0) std::cerr << '.' << std::flush;
    }
  }
  if (done >= 50) std::cerr << '\n';
  return out;
}

std::vector<double> pairwise_ratios(std::span<const Measurement> ms,
                                    Algorithm algo, Dimension d, int value_a,
                                    int value_b) {
  // Index verified measurements by (style-with-d-cleared, graph).
  std::map<std::pair<std::string, int>, double> table;
  auto key_of = [&](const Measurement& m) {
    StyleConfig base = with_dimension(m.style, d, 0);
    return std::pair<std::string, int>(
        m.graph + "#" + program_name(m.model, m.algo, base),
        get_dimension(m.style, d));
  };
  for (const Measurement& m : ms) {
    if (m.algo != algo || !m.verified) continue;
    table[key_of(m)] = m.throughput_ges;
  }
  std::vector<double> ratios;
  for (const auto& [key, thr_a] : table) {
    if (key.second != value_a) continue;
    const auto it = table.find({key.first, value_b});
    if (it == table.end() || it->second <= 0.0) continue;
    ratios.push_back(thr_a / it->second);
  }
  return ratios;
}

std::vector<stats::NamedSample> ratio_samples_by_algorithm(
    std::span<const Measurement> ms, std::span<const Algorithm> algos,
    Dimension d, int value_a, int value_b) {
  std::vector<stats::NamedSample> samples;
  for (Algorithm a : algos) {
    stats::NamedSample s;
    s.label = to_string(a);
    s.values = pairwise_ratios(ms, a, d, value_a, value_b);
    samples.push_back(std::move(s));
  }
  return samples;
}

std::vector<Measurement> verified_of_model(std::span<const Measurement> ms,
                                           Model m) {
  std::vector<Measurement> out;
  for (const Measurement& x : ms) {
    if (x.model == m && x.verified) out.push_back(x);
  }
  return out;
}

bool shape_check(const std::string& name, bool condition) {
  std::cout << (condition ? "[SHAPE PASS] " : "[SHAPE DIFF] ") << name
            << '\n';
  return condition;
}

bool classic_atomics_only(const Variant& v) {
  return v.style.alib == AtomicsLib::Classic;
}

}  // namespace indigo::bench
