#include "bench_util/harness.hpp"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "threading/thread_team.hpp"
#include "variants/register_all.hpp"

namespace indigo::bench {
namespace {

std::atomic<int> g_shape_failures{0};

std::string scale_tag() {
  const char* env = std::getenv("REPRO_SCALE");
  return env != nullptr ? env : "1";
}

std::string make_key(const std::string& program, const std::string& graph,
                     const std::string& device, int threads) {
  std::ostringstream os;
  os << program << '|' << graph << '|' << device << '|' << threads << '|'
     << scale_tag();
  // Instrumented runs carry counter payloads and must not shadow (or be
  // shadowed by) plain timing entries recorded without them.
  if (obs::enabled()) os << "|obs";
  return os.str();
}

/// metrics map <-> cache field. Encoded as `name=value;name=value` — no
/// tabs (the cache field separator) and no '=' or ';' appear in counter
/// names by construction.
std::string encode_metrics(const std::map<std::string, double>& metrics) {
  std::ostringstream os;
  os.precision(17);
  bool first = true;
  for (const auto& [k, v] : metrics) {
    if (!first) os << ';';
    first = false;
    os << k << '=' << v;
  }
  return os.str();
}

bool decode_metrics(const std::string& field,
                    std::map<std::string, double>& out) {
  std::istringstream is(field);
  std::string item;
  while (std::getline(is, item, ';')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    try {
      std::size_t used = 0;
      const double v = std::stod(item.substr(eq + 1), &used);
      if (used != item.size() - eq - 1) return false;
      out[item.substr(0, eq)] = v;
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

}  // namespace

Harness::Harness() {
  variants::register_all_variants();
  obs::init_from_env();
  graphs_ = make_study_inputs();
  verifiers_.resize(graphs_.size());
  const char* env = std::getenv("REPRO_CACHE");
  cache_path_ = env != nullptr ? env : "repro_cache.csv";
  load_cache();
}

void Harness::load_cache() {
  if (cache_path_.empty()) return;
  std::ifstream in(cache_path_);
  if (!in) return;  // no cache yet: every entry will be measured fresh
  std::string line;
  std::size_t lineno = 0;
  std::size_t bad = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    // key \t seconds \t throughput \t iterations \t verified [\t metrics]
    std::istringstream ls(line);
    std::string key, metrics_field;
    CacheEntry e{};
    int verified = 0;
    const bool core_ok =
        static_cast<bool>(std::getline(ls, key, '\t')) && !key.empty() &&
        static_cast<bool>(ls >> e.seconds >> e.throughput >> e.iterations >>
                          verified) &&
        (verified == 0 || verified == 1) && e.seconds >= 0;
    bool metrics_ok = true;
    if (core_ok) {
      // Optional 6th field; tolerate its absence (pre-metrics caches).
      ls >> std::ws;
      if (std::getline(ls, metrics_field, '\t')) {
        metrics_ok = decode_metrics(metrics_field, e.metrics);
      }
    }
    if (!core_ok || !metrics_ok) {
      // A truncated write (crash mid-append) or hand-edited garbage must
      // not poison the whole cache: drop the line, keep the rest.
      ++bad;
      std::cerr << "[warn] " << cache_path_ << ':' << lineno
                << ": skipping malformed cache line\n";
      continue;
    }
    e.verified = verified != 0;
    cache_[key] = e;
  }
  if (bad > 0) {
    std::cerr << "[warn] " << cache_path_ << ": ignored " << bad
              << " malformed line(s); affected entries will be re-measured\n";
  }
}

Harness::CacheEntry* Harness::cache_find(const std::string& key) {
  const auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : &it->second;
}

void Harness::cache_append(const std::string& key, const CacheEntry& e) {
  cache_[key] = e;
  if (cache_path_.empty()) return;
  std::ofstream out(cache_path_, std::ios::app);
  out.precision(17);  // doubles must round-trip exactly
  out << key << '\t' << e.seconds << '\t' << e.throughput << '\t'
      << e.iterations << '\t' << (e.verified ? 1 : 0);
  if (!e.metrics.empty()) out << '\t' << encode_metrics(e.metrics);
  out << '\n';
}

Verifier& Harness::verifier_for(const Graph& g) {
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    if (&graphs_[i] == &g) {
      if (!verifiers_[i]) verifiers_[i] = std::make_unique<Verifier>(g, 0);
      return *verifiers_[i];
    }
  }
  throw std::logic_error("verifier_for: unknown graph");
}

RunOptions Harness::base_run_options(const vcuda::DeviceSpec* device) const {
  RunOptions opts;
  opts.source = 0;
  opts.num_threads = cpu_threads();
  opts.device = device;
  return opts;
}

namespace {

/// One Measurement as a JSONL run record (docs/OBSERVABILITY.md schema).
void export_measurement(const Measurement& m, const std::string& dev_name,
                        bool from_cache) {
  if (obs::metrics_path().empty()) return;
  obs::JsonObject rec;
  rec.field("program", m.program)
      .field("model", to_string(m.model))
      .field("algo", to_string(m.algo))
      .field("graph", m.graph)
      .field("device", dev_name)
      .field("seconds", m.seconds)
      .field("throughput_ges", m.throughput_ges)
      .field("iterations", static_cast<std::uint64_t>(m.iterations))
      .field("verified", m.verified)
      .field("from_cache", from_cache);
  if (!m.error.empty()) rec.field("error", m.error);
  rec.field_raw("metrics", obs::json_of_metrics(m.metrics));
  obs::append_metrics_record(rec.str());
}

}  // namespace

Measurement Harness::measure_one(const Variant& v, const Graph& g,
                                 const vcuda::DeviceSpec* device, int reps) {
  const std::string dev_name =
      v.model == Model::Cuda
          ? (device != nullptr ? device->name : "rtx3090_like")
          : "cpu";
  const std::string key = make_key(v.name, g.name(), dev_name, cpu_threads());
  if (CacheEntry* e = cache_find(key)) {
    Measurement m;
    m.program = v.name;
    m.model = v.model;
    m.algo = v.algo;
    m.style = v.style;
    m.graph = g.name();
    m.seconds = e->seconds;
    m.throughput_ges = e->throughput;
    m.iterations = e->iterations;
    m.verified = e->verified;
    m.metrics = e->metrics;
    if (!e->verified) m.error = "cached failure";
    export_measurement(m, dev_name, /*from_cache=*/true);
    return m;
  }
  const RunOptions opts = base_run_options(device);
  Measurement m;
  try {
    m = measure(v, g, opts, reps, verifier_for(g));
  } catch (const std::exception& ex) {
    m.program = v.name;
    m.model = v.model;
    m.algo = v.algo;
    m.style = v.style;
    m.graph = g.name();
    m.verified = false;
    m.error = ex.what();
  }
  cache_append(key, {m.seconds, m.throughput_ges, m.iterations, m.verified,
                     m.metrics});
  export_measurement(m, dev_name, /*from_cache=*/false);
  if (!m.verified) {
    std::cerr << "\n[warn] " << m.program << " on " << m.graph
              << " failed verification: " << m.error << '\n';
  }
  return m;
}

std::vector<Measurement> Harness::sweep(const SweepOptions& opts) {
  obs::Span span("sweep", "harness");
  const auto selected = Registry::instance().select(opts.model, opts.algo);
  std::vector<Measurement> out;
  std::size_t done = 0;
  for (const Variant* v : selected) {
    if (opts.style_filter && !opts.style_filter(*v)) continue;
    for (const Graph& g : graphs_) {
      out.push_back(measure_one(*v, g, opts.device, opts.reps));
      if (++done % 50 == 0) std::cerr << '.' << std::flush;
    }
  }
  if (done >= 50) std::cerr << '\n';
  span.arg("measurements", static_cast<double>(done));
  return out;
}

std::vector<double> pairwise_ratios(std::span<const Measurement> ms,
                                    Algorithm algo, Dimension d, int value_a,
                                    int value_b) {
  // Index verified measurements by (style-with-d-cleared, graph).
  std::map<std::pair<std::string, int>, double> table;
  auto key_of = [&](const Measurement& m) {
    StyleConfig base = with_dimension(m.style, d, 0);
    return std::pair<std::string, int>(
        m.graph + "#" + program_name(m.model, m.algo, base),
        get_dimension(m.style, d));
  };
  for (const Measurement& m : ms) {
    if (m.algo != algo || !m.verified) continue;
    table[key_of(m)] = m.throughput_ges;
  }
  std::vector<double> ratios;
  for (const auto& [key, thr_a] : table) {
    if (key.second != value_a) continue;
    const auto it = table.find({key.first, value_b});
    if (it == table.end() || it->second <= 0.0) continue;
    ratios.push_back(thr_a / it->second);
  }
  return ratios;
}

std::vector<stats::NamedSample> ratio_samples_by_algorithm(
    std::span<const Measurement> ms, std::span<const Algorithm> algos,
    Dimension d, int value_a, int value_b) {
  std::vector<stats::NamedSample> samples;
  for (Algorithm a : algos) {
    stats::NamedSample s;
    s.label = to_string(a);
    s.values = pairwise_ratios(ms, a, d, value_a, value_b);
    samples.push_back(std::move(s));
  }
  return samples;
}

std::vector<Measurement> verified_of_model(std::span<const Measurement> ms,
                                           Model m) {
  std::vector<Measurement> out;
  for (const Measurement& x : ms) {
    if (x.model == m && x.verified) out.push_back(x);
  }
  return out;
}

bool shape_check(const std::string& name, bool condition) {
  if (!condition) g_shape_failures.fetch_add(1, std::memory_order_relaxed);
  std::cout << (condition ? "[SHAPE PASS] " : "[SHAPE DIFF] ") << name
            << '\n';
  return condition;
}

int shape_check_failures() {
  return g_shape_failures.load(std::memory_order_relaxed);
}

int exit_code() { return shape_check_failures() == 0 ? 0 : 1; }

bool classic_atomics_only(const Variant& v) {
  return v.style.alib == AtomicsLib::Classic;
}

}  // namespace indigo::bench
