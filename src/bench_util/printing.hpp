// Report formatting shared by the bench binaries: figure headers, boxen +
// summary blocks, and markdown-ish matrices.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace indigo::bench {

/// Prints the figure/table banner with the paper's claim being reproduced.
void print_header(const std::string& id, const std::string& title,
                  const std::string& paper_claim);

/// Prints a boxen rendering plus the numeric summary table of the samples.
void print_distribution(const std::vector<stats::NamedSample>& samples,
                        const std::string& y_label = "throughput ratio");

/// Prints a labelled matrix with fixed-width numeric cells.
void print_matrix(const std::vector<std::string>& row_labels,
                  const std::vector<std::string>& col_labels,
                  const std::vector<std::vector<double>>& cells,
                  int precision = 2);

}  // namespace indigo::bench
