#include "racecheck/selftest.hpp"

#include <cstdint>
#include <vector>

#include "vcuda/sim.hpp"

namespace indigo::racecheck::selftest {

Report injected_race_report(const vcuda::DeviceSpec& spec) {
  ScopedEnable on(true);
  vcuda::Device dev(spec);
  std::vector<std::uint32_t> host(1, 0);
  auto cell = dev.array(std::span<std::uint32_t>(host));
  // Every thread of every block stores into cell 0 with no atomics and no
  // barrier; odd threads store 1, even threads 1000, so the value swings in
  // both directions — the canonical harmful race.
  dev.launch(4, 32, [&](vcuda::Block& blk) {
    blk.for_each_thread([&](vcuda::Thread& t) {
      cell.st(t, 0, t.gidx() % 2 == 0 ? 1000u : 1u);
      (void)cell.ld(t, 0);
    });
  });
  return dev.racecheck_report();
}

Report synced_control_report(const vcuda::DeviceSpec& spec) {
  ScopedEnable on(true);
  vcuda::Device dev(spec);
  std::vector<std::uint32_t> host(64, 0);
  auto arr = dev.array(std::span<std::uint32_t>(host));
  // One block: thread 0 publishes, __syncthreads, everyone reads; plus each
  // thread owns a private slot. Both patterns are race-free and must not
  // trip any conflict class.
  dev.launch(1, 64, [&](vcuda::Block& blk) {
    blk.for_each_thread([&](vcuda::Thread& t) {
      if (t.thread_idx() == 0) arr.st(t, 0, 42u);
      arr.st(t, t.thread_idx(), t.thread_idx());
    });
    blk.sync();
    blk.for_each_thread([&](vcuda::Thread& t) { (void)arr.ld(t, 0); });
  });
  return dev.racecheck_report();
}

}  // namespace indigo::racecheck::selftest
