// Negative-test kernels for the racecheck detector.
//
// A detector that never fires is indistinguishable from a working one, so
// the audit (bench/racecheck_audit) and the unit tests run two tiny vcuda
// kernels with known ground truth:
//   * injected_race_report: many blocks plain-store alternating values into
//     a single cell with no synchronization — a direction-reversing
//     write-write race the checker MUST classify harmful.
//   * synced_control_report: the same data flow made correct with
//     __syncthreads and per-thread slots — the checker MUST stay silent.
#pragma once

#include "racecheck/racecheck.hpp"
#include "vcuda/device_spec.hpp"

namespace indigo::racecheck::selftest {

/// Per-device report of the deliberately racy kernel (harmful > 0 expected).
Report injected_race_report(const vcuda::DeviceSpec& spec);

/// Per-device report of the properly synchronized kernel (all zero
/// expected).
Report synced_control_report(const vcuda::DeviceSpec& spec);

}  // namespace indigo::racecheck::selftest
