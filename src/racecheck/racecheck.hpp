// Dynamic data-race and determinism audit (racecheck).
//
// The paper's determinism dimension (Section 2.7, Fig 7) distinguishes
// styles by the races they admit: deterministic codes must be race-free,
// while the non-deterministic styles deliberately exploit benign races
// (monotonic in-place updates, duplicate-tolerant worklists). Output
// verification cannot tell those apart — a racy "deterministic" variant can
// still produce the right answer on one interleaving. racecheck closes that
// gap dynamically:
//
//  * vcuda: the simulator already routes every global-memory access through
//    Thread::record; a VcudaChecker extends that into per-element shadow
//    state (last reader/writer thread + block + __syncthreads epoch) and
//    flags conflicting unsynchronized read-write / write-write pairs,
//    classified by the benign-race taxonomy below.
//  * CPU models: real threads race for real, so the checker cannot observe
//    individual accesses cheaply; instead it audits the synchronization
//    *discipline* (ThreadTeam region nesting, Worklist cursor/clear usage)
//    and defers instruction-level checking to the TSan build preset
//    (INDIGO_TSAN, see docs/RACECHECK.md).
//
// Everything is gated on enabled(): when off (the default), the hooks are a
// single relaxed atomic load and no shadow state is allocated, so the
// timing model and the measured CPU codes are unperturbed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace indigo::racecheck {

// ---------------------------------------------------------------------------
// Global enable gate (mirrors obs::enabled()).

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Turns the checker on for a scope (no-op when `on` is false or it is
/// already enabled); restores the previous state on destruction.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) : prev_(enabled()) {
    if (on && !prev_) set_enabled(true);
  }
  ~ScopedEnable() { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// Findings.

/// Conflict classes, in classification priority order. A "conflict" is a
/// pair of accesses to the same element, at least one a write, from
/// different threads of the same launch, not ordered by __syncthreads
/// (different blocks never synchronize within a launch).
struct Report {
  /// Both sides are atomic operations: the hardware serializes them; this
  /// is the paper's sanctioned non-deterministic RMW style (Listing 5b).
  std::uint64_t conflicts_atomic = 0;
  /// The address lies in a range the kernel declared racy-by-design
  /// (Device::declare_racy): e.g. pull-style non-deterministic PageRank
  /// updates ranks in place with plain stores (Listing 5a world) whose
  /// values move non-monotonically between sweeps-in-flight.
  std::uint64_t conflicts_declared = 0;
  /// The racing write did not change the value (e.g. every thread storing 1
  /// into a `changed` flag): any interleaving yields the same memory state.
  std::uint64_t conflicts_same_value = 0;
  /// The racing write moved the value in this element's consistent
  /// direction (distances only decrease, MIS statuses only advance): the
  /// paper's benign monotonic read-write race (Listing 5a).
  std::uint64_t conflicts_monotonic = 0;
  /// Everything else — a plain-access conflict whose value moves in both
  /// directions. A deterministic-style variant must never produce one, and
  /// neither should any published non-deterministic style.
  std::uint64_t conflicts_harmful = 0;

  /// CPU-side synchronization-discipline violations (nested ThreadTeam
  /// regions, Worklist misuse); see docs/RACECHECK.md.
  std::uint64_t discipline_violations = 0;

  /// Distinct element addresses that ever entered the shadow map (info).
  std::uint64_t addresses_tracked = 0;

  /// First few harmful sites / violations, human-readable.
  std::vector<std::string> notes;

  [[nodiscard]] std::uint64_t benign_conflicts() const {
    return conflicts_atomic + conflicts_declared + conflicts_same_value +
           conflicts_monotonic;
  }
  [[nodiscard]] std::uint64_t total_conflicts() const {
    return benign_conflicts() + conflicts_harmful;
  }
  [[nodiscard]] bool clean() const {
    return conflicts_harmful == 0 && discipline_violations == 0;
  }

  static constexpr std::size_t kMaxNotes = 8;
  void add_note(std::string s);
  void merge(const Report& other);
};

/// Difference of two cumulative reports (notes taken from `after` minus the
/// first `before.notes.size()` entries).
Report diff(const Report& after, const Report& before);

/// Process-wide running totals; checkers fold into this (VcudaChecker on
/// device destruction, CPU hooks immediately). Thread-safe.
Report global_report();
void reset_global();
void merge_global(const Report& r);

/// Metric-map entries ("racecheck.*") for a report, as written into
/// Measurement::metrics by runner::measure.
std::vector<std::pair<std::string, double>> metric_entries(const Report& r);

// ---------------------------------------------------------------------------
// vcuda shadow-state checker.
//
// One VcudaChecker per vcuda::Device, created only while enabled(). The
// simulator is sequential, so the checker needs no locking; it observes the
// scrambled-but-deterministic interleaving the Device executes and applies
// CUDA's synchronization rules to it:
//   ordered(a, b) :=  a.launch != b.launch            (kernel boundary)
//                  || a.thread == b.thread             (program order)
//                  || (a.block == b.block && a.epoch != b.epoch)
//                                                      (__syncthreads)
// Accesses from different blocks of the same launch are never ordered.
class VcudaChecker {
 public:
  /// Kernel boundary: everything before happens-before everything after.
  void on_launch_begin();
  /// __syncthreads: advances the intra-block sync epoch.
  void on_sync();

  void read(const void* elem, std::uint32_t block, std::uint32_t tid,
            bool atomic);
  /// `delta_sign` is the direction the write moved the value: -1 lowered,
  /// +1 raised, 0 unchanged. Computed by DeviceArray before mutating.
  void write(const void* elem, std::uint32_t block, std::uint32_t tid,
             bool atomic, int delta_sign);

  /// Marks [base, base+bytes) as racy-by-design: conflicts on it are
  /// classified BenignDeclared instead of escalating to harmful.
  void declare_racy(const void* base, std::size_t bytes);

  [[nodiscard]] const Report& report() const { return report_; }

  /// Folds the final tallies into the global report. Called once, by
  /// ~Device.
  void finalize();

 private:
  struct AccessRec {
    std::uint64_t launch = 0;
    std::uint64_t epoch = 0;
    std::uint32_t block = 0;
    std::uint32_t tid = 0;
    bool atomic = false;
    bool valid = false;
  };
  struct Shadow {
    AccessRec last_write;
    AccessRec last_read;
    std::int8_t last_write_sign = 0;
    /// Direction established by the first value-changing racing write;
    /// later racing writes must agree or the race is harmful.
    std::int8_t mono_dir = 0;
  };

  [[nodiscard]] bool conflicts(const AccessRec& prev,
                               const AccessRec& cur) const;
  [[nodiscard]] bool declared(std::uint64_t addr) const;
  void classify(Shadow& s, std::uint64_t addr, const AccessRec& prev,
                const AccessRec& cur, bool both_atomic, int write_sign);

  std::unordered_map<std::uint64_t, Shadow> shadow_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> racy_ranges_;
  Report report_;
  std::uint64_t launch_ = 0;
  std::uint64_t epoch_ = 0;
  bool finalized_ = false;
};

// ---------------------------------------------------------------------------
// CPU-side discipline hooks (ThreadTeam / Worklist).

/// Epoch counter advanced at every parallel-region fork; Worklist slot
/// stamps use it to detect two pushes landing in one slot within a region.
std::uint64_t cpu_region_epoch();

/// ThreadTeam::run wraps the region in begin/end (only while enabled()).
void cpu_region_begin();
void cpu_region_end();

/// True while the calling thread is a ThreadTeam worker executing a job.
/// Set by the team's worker loop; used to flag nested run() calls and
/// Worklist::clear() from inside the region that may still be pushing.
bool cpu_in_worker();
void cpu_set_in_worker(bool in);

/// Records one discipline violation (bumps the global report).
void cpu_note_violation(const std::string& what);

}  // namespace indigo::racecheck
