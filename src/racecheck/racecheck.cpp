#include "racecheck/racecheck.hpp"

#include <mutex>
#include <sstream>
#include <utility>

#include "obs/counters.hpp"

namespace indigo::racecheck {

// ---------------------------------------------------------------------------
// Report.

void Report::add_note(std::string s) {
  if (notes.size() < kMaxNotes) notes.push_back(std::move(s));
}

void Report::merge(const Report& other) {
  conflicts_atomic += other.conflicts_atomic;
  conflicts_declared += other.conflicts_declared;
  conflicts_same_value += other.conflicts_same_value;
  conflicts_monotonic += other.conflicts_monotonic;
  conflicts_harmful += other.conflicts_harmful;
  discipline_violations += other.discipline_violations;
  addresses_tracked += other.addresses_tracked;
  for (const auto& n : other.notes) add_note(n);
}

Report diff(const Report& after, const Report& before) {
  Report d;
  d.conflicts_atomic = after.conflicts_atomic - before.conflicts_atomic;
  d.conflicts_declared = after.conflicts_declared - before.conflicts_declared;
  d.conflicts_same_value =
      after.conflicts_same_value - before.conflicts_same_value;
  d.conflicts_monotonic =
      after.conflicts_monotonic - before.conflicts_monotonic;
  d.conflicts_harmful = after.conflicts_harmful - before.conflicts_harmful;
  d.discipline_violations =
      after.discipline_violations - before.discipline_violations;
  d.addresses_tracked = after.addresses_tracked - before.addresses_tracked;
  for (std::size_t i = before.notes.size(); i < after.notes.size(); ++i) {
    d.add_note(after.notes[i]);
  }
  return d;
}

namespace {

std::mutex g_report_mu;
Report g_report;

}  // namespace

Report global_report() {
  std::lock_guard lk(g_report_mu);
  return g_report;
}

void reset_global() {
  std::lock_guard lk(g_report_mu);
  g_report = Report{};
}

void merge_global(const Report& r) {
  {
    std::lock_guard lk(g_report_mu);
    g_report.merge(r);
  }
  // Mirror into the obs layer so traces/JSONL carry the audit alongside the
  // hardware-style counters.
  if (obs::enabled() && r.total_conflicts() + r.discipline_violations > 0) {
    auto& reg = obs::CounterRegistry::instance();
    static obs::Counter& c_benign = reg.counter("racecheck.benign");
    static obs::Counter& c_harmful = reg.counter("racecheck.harmful");
    static obs::Counter& c_disc = reg.counter("racecheck.discipline");
    c_benign.add(r.benign_conflicts());
    c_harmful.add(r.conflicts_harmful);
    c_disc.add(r.discipline_violations);
  }
}

std::vector<std::pair<std::string, double>> metric_entries(const Report& r) {
  return {
      {"racecheck.conflicts_atomic", static_cast<double>(r.conflicts_atomic)},
      {"racecheck.conflicts_declared",
       static_cast<double>(r.conflicts_declared)},
      {"racecheck.conflicts_same_value",
       static_cast<double>(r.conflicts_same_value)},
      {"racecheck.conflicts_monotonic",
       static_cast<double>(r.conflicts_monotonic)},
      {"racecheck.conflicts_harmful",
       static_cast<double>(r.conflicts_harmful)},
      {"racecheck.discipline_violations",
       static_cast<double>(r.discipline_violations)},
  };
}

// ---------------------------------------------------------------------------
// VcudaChecker.

void VcudaChecker::on_launch_begin() {
  ++launch_;
  // Stale shadow entries stay in the map but become inert: their launch id
  // differs from every new access, and cross-launch pairs are ordered.
}

void VcudaChecker::on_sync() { ++epoch_; }

bool VcudaChecker::conflicts(const AccessRec& prev,
                             const AccessRec& cur) const {
  if (!prev.valid || prev.launch != cur.launch) return false;  // boundary
  if (prev.block != cur.block) return true;  // no inter-block sync exists
  if (prev.tid == cur.tid) return false;     // program order
  return prev.epoch == cur.epoch;            // __syncthreads between them?
}

bool VcudaChecker::declared(std::uint64_t addr) const {
  for (const auto& [lo, hi] : racy_ranges_) {
    if (addr >= lo && addr < hi) return true;
  }
  return false;
}

void VcudaChecker::classify(Shadow& s, std::uint64_t addr,
                            const AccessRec& prev, const AccessRec& cur,
                            bool both_atomic, int write_sign) {
  if (both_atomic) {
    ++report_.conflicts_atomic;
    return;
  }
  if (declared(addr)) {
    ++report_.conflicts_declared;
    return;
  }
  if (write_sign == 0) {
    ++report_.conflicts_same_value;
    return;
  }
  // Only *racing* value-changing writes establish/confirm the element's
  // monotone direction; ordered initialization writes (e.g. distance = INF
  // then later relaxations downward) must not poison it.
  if (s.mono_dir == 0 || s.mono_dir == static_cast<std::int8_t>(write_sign)) {
    s.mono_dir = static_cast<std::int8_t>(write_sign);
    ++report_.conflicts_monotonic;
    return;
  }
  ++report_.conflicts_harmful;
  std::ostringstream os;
  os << "harmful race at 0x" << std::hex << addr << std::dec << " launch "
     << cur.launch << ": block " << prev.block << " tid " << prev.tid
     << " vs block " << cur.block << " tid " << cur.tid
     << " (direction reversed: " << static_cast<int>(s.mono_dir) << " then "
     << write_sign << ")";
  report_.add_note(os.str());
}

void VcudaChecker::read(const void* elem, std::uint32_t block,
                        std::uint32_t tid, bool atomic) {
  const auto addr = reinterpret_cast<std::uint64_t>(elem);
  Shadow& s = shadow_[addr];
  const AccessRec cur{launch_, epoch_, block, tid, atomic, true};
  if (conflicts(s.last_write, cur)) {
    classify(s, addr, s.last_write, cur, s.last_write.atomic && atomic,
             s.last_write_sign);
  }
  s.last_read = cur;
}

void VcudaChecker::write(const void* elem, std::uint32_t block,
                         std::uint32_t tid, bool atomic, int delta_sign) {
  const auto addr = reinterpret_cast<std::uint64_t>(elem);
  Shadow& s = shadow_[addr];
  const AccessRec cur{launch_, epoch_, block, tid, atomic, true};
  // Last-access approximation: report at most one conflict per incoming
  // access, preferring the write-write pair.
  if (conflicts(s.last_write, cur)) {
    classify(s, addr, s.last_write, cur, s.last_write.atomic && atomic,
             delta_sign);
  } else if (conflicts(s.last_read, cur)) {
    classify(s, addr, s.last_read, cur, s.last_read.atomic && atomic,
             delta_sign);
  }
  s.last_write = cur;
  s.last_write_sign = static_cast<std::int8_t>(delta_sign);
}

void VcudaChecker::declare_racy(const void* base, std::size_t bytes) {
  const auto lo = reinterpret_cast<std::uint64_t>(base);
  racy_ranges_.emplace_back(lo, lo + bytes);
}

void VcudaChecker::finalize() {
  if (finalized_) return;
  finalized_ = true;
  report_.addresses_tracked = shadow_.size();
  merge_global(report_);
}

// ---------------------------------------------------------------------------
// CPU discipline hooks.

namespace {

std::atomic<std::uint64_t> g_cpu_epoch{0};
thread_local bool t_in_worker = false;

}  // namespace

std::uint64_t cpu_region_epoch() {
  return g_cpu_epoch.load(std::memory_order_relaxed);
}

void cpu_region_begin() {
  g_cpu_epoch.fetch_add(1, std::memory_order_relaxed);
}

void cpu_region_end() {}

bool cpu_in_worker() { return t_in_worker; }
void cpu_set_in_worker(bool in) { t_in_worker = in; }

void cpu_note_violation(const std::string& what) {
  Report r;
  r.discipline_violations = 1;
  r.add_note("discipline: " + what);
  merge_global(r);
}

}  // namespace indigo::racecheck
