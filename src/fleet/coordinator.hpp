// Fleet runtime, part 4: the coordinator.
//
// One coordinator serves a fleet of worker daemons over the framed socket
// protocol (protocol.hpp): it partitions the sweep into shards (sched/
// shard.hpp), hands them out as time-bounded leases (lease.hpp), renews
// leases on heartbeats, expires them when a worker goes quiet, releases
// them instantly when a connection drops (a SIGKILLed worker's socket
// closes with it), and fences stale completions so a reassigned shard is
// only counted once. Worker death is also reported out-of-band by the
// process spawner (note_worker_exit), which lets the coordinator pick up
// the flight dump the worker's fatal-signal handler left behind and append
// the whole story to the canonical journal as `# fleet:` annotations.
//
// The coordinator is transport-only: it never touches graphs or variants.
// Shard contents are re-derived by each worker from the deterministic cell
// enumeration, and results stay in per-worker journals until
// merge_worker_journals folds them into the canonical store after the run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fleet/lease.hpp"
#include "sched/result_store.hpp"
#include "sched/shard.hpp"

namespace indigo::fleet {

/// Per-worker view for stats/telemetry.
struct WorkerView {
  int rank = -1;
  long pid = 0;
  std::string journal;
  bool connected = false;
  bool exited = false;
  bool abnormal = false;        // died without a clean exit status
  std::size_t shards_done = 0;
  std::string flight_dump;      // picked up after an abnormal death
};

struct CoordinatorStats {
  std::size_t shards = 0;
  std::size_t done_shards = 0;
  std::size_t cells = 0;
  std::size_t done_cells = 0;
  std::uint64_t lease_releases = 0;  // expiries + connection deaths
  std::uint64_t fenced = 0;          // stale-fence messages rejected
  std::size_t executed = 0;          // summed from accepted shard_done
  std::size_t hits = 0;
  std::size_t quarantined = 0;
  std::vector<WorkerView> workers;
};

struct CoordinatorOptions {
  std::vector<sched::ShardSpec> shards;
  /// Lease duration; a worker heartbeats at a third of this.
  double lease_s = 10.0;
  /// Cadence of the expiry sweep and the granularity of wait_until_done.
  double poll_interval_s = 0.25;
  /// Canonical store for `# fleet:` annotations (lease expiry, worker
  /// death, flight-dump pickup). May be null.
  sched::ResultStore* canonical = nullptr;
  /// One human-readable line per noteworthy event. May be null.
  std::function<void(const std::string&)> log;
  /// Fault-injection hook: called (rank, pid, shard_id) on every accepted
  /// heartbeat. The CI smoke SIGKILLs a worker from here, guaranteeing the
  /// kill lands mid-shard.
  std::function<void(int, long, std::uint32_t)> on_heartbeat;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opts);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds 127.0.0.1, starts the accept/expiry threads, registers the
  /// "fleet" telemetry section. Returns the listening port (0 = failure).
  std::uint16_t start();

  /// Blocks until every shard is done (true), the timeout expires, or no
  /// progress is possible anymore — no connected workers, none alive at
  /// the spawner, shards remaining (false). timeout_s 0 waits forever.
  bool wait_until_done(double timeout_s = 0);

  /// Stops serving: drains writers, closes connections, joins threads.
  /// Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] CoordinatorStats stats() const;

  /// Journal paths reported by workers at hello, deduplicated, in rank
  /// order — the merge list.
  [[nodiscard]] std::vector<std::string> worker_journals() const;

  /// Spawner callback: child `pid` was reaped. Releases its leases, picks
  /// up flightdump-<pid>.json if the crash handler left one, annotates.
  void note_worker_exit(long pid, bool clean_exit);

  /// Spawner liveness (children currently running). Used by
  /// wait_until_done to detect an unfinishable run. Negative = unknown.
  void set_live_workers(int n);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace indigo::fleet
