// Fleet runtime, part 1: the wire protocol.
//
// Coordinator and worker daemons talk over a local TCP socket (loopback by
// default; the same framing works for remote peers) using length-prefixed
// frames: a 4-byte little-endian payload length, then the payload. The
// payload is a line-oriented text message — first line the message type,
// then one `key<TAB>value` line per field — chosen over a binary encoding
// for the same reason the result journal is text: torn or unexpected frames
// are debuggable with `xxd`.
//
// Writes go through a FrameWriter with a dedicated writer thread draining a
// queue (the pocl remote-device daemon pattern): a worker's heartbeat can
// never block behind a slow socket while its shard is executing, and frame
// boundaries are preserved without any cross-thread write interleaving.
//
// Message vocabulary (fields in parentheses):
//
//   worker -> coordinator
//     hello        (rank, pid, journal, cells)    — register; cells is the
//                                                   local enumeration size
//     lease_request(rank)                         — ask for a shard
//     heartbeat    (shard, fence, done)           — renew lease, progress
//     shard_done   (shard, fence, executed, hits, quarantined)
//     bye          (rank)                         — clean exit
//
//   coordinator -> worker
//     hello_ack    (lease_s, shards, cells)       — config echo; a cells
//                                                   mismatch is fatal
//     lease        (shard, begin, end, fence)     — a time-bounded lease
//     wait         (ms)                           — nothing free; retry
//     drain        ()                             — no work left; exit
//     fenced       (shard, fence)                 — lease expired and was
//                                                   reassigned; drop it
//     error        (reason)                       — fatal; close
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace indigo::fleet {

/// One decoded protocol message: a type plus string fields. Field values
/// are sanitized on encode (tabs/newlines become spaces) so a path or error
/// text can never splice the line format.
struct Message {
  std::string type;
  std::map<std::string, std::string> fields;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& dflt = {}) const;
  [[nodiscard]] long long geti(const std::string& key,
                               long long dflt = 0) const;
  Message& set(const std::string& key, std::string value);
  Message& seti(const std::string& key, long long value);
};

/// Message <-> frame payload. decode returns nullopt on an empty payload.
std::string encode_message(const Message& m);
std::optional<Message> decode_message(const std::string& payload);

/// Writes one length-prefixed frame; false on any write error.
bool write_frame(int fd, const std::string& payload);
/// Reads one frame; nullopt on EOF, error, or a length above `max_len`
/// (a corrupt prefix must not trigger a giant allocation).
std::optional<std::string> read_frame(int fd, std::size_t max_len = 1 << 20);

bool write_message(int fd, const Message& m);
std::optional<Message> read_message(int fd);

/// A listening TCP socket on 127.0.0.1 with a kernel-assigned port.
struct ListenSocket {
  int fd = -1;
  std::uint16_t port = 0;
};
std::optional<ListenSocket> listen_local();
/// Accepts one connection; -1 on error. Blocks.
int accept_connection(int listen_fd);
/// Connects to host:port, retrying until timeout_s elapses (covers a worker
/// racing the coordinator's listen). -1 on failure.
int connect_to(const std::string& host, std::uint16_t port, double timeout_s);

/// Dedicated writer thread over one socket: send() enqueues and returns
/// immediately; the thread drains the queue in order. After a write error
/// failed() turns true and further sends are dropped. close() flushes the
/// queue, joins the thread, and leaves the fd open (the owner closes it).
class FrameWriter {
 public:
  explicit FrameWriter(int fd);
  ~FrameWriter();
  FrameWriter(const FrameWriter&) = delete;
  FrameWriter& operator=(const FrameWriter&) = delete;

  void send(const Message& m);
  void close();
  [[nodiscard]] bool failed() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace indigo::fleet
