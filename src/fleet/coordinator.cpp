#include "fleet/coordinator.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "fleet/protocol.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace indigo::fleet {

namespace {
using Clock = std::chrono::steady_clock;
}

struct Coordinator::Impl {
  explicit Impl(CoordinatorOptions o)
      : opts(std::move(o)), table(opts.shards, opts.lease_s) {}

  CoordinatorOptions opts;

  // One connection's lifetime: the reader thread owns the fd and removes the
  // Conn from the registry only at shutdown (joined there), so dispatch can
  // use conn->writer without a use-after-free window.
  struct Conn {
    int fd = -1;
    int rank = -1;  // -1 until hello
    long pid = 0;
    std::unique_ptr<FrameWriter> writer;
    std::thread reader;
    bool open = true;  // under mu
  };

  mutable std::mutex mu;
  std::condition_variable cv;  // done / unfinishable / stats change
  LeaseTable table;
  std::map<int, WorkerView> workers;  // by rank
  std::vector<std::unique_ptr<Conn>> conns;
  std::size_t executed = 0, hits = 0, quarantined = 0;
  std::uint64_t fenced = 0;
  int live_workers = -1;  // spawner liveness; -1 = unknown
  bool stopping = false;

  ListenSocket listener;
  std::thread accept_thread;
  std::thread expiry_thread;
  bool started = false;

  void log_line(const std::string& s) {
    if (opts.log) opts.log(s);
  }
  void annotate(const std::string& s) {
    if (opts.canonical) opts.canonical->annotate(s);
  }

  void note_releases(const std::vector<LeaseRelease>& rels,
                     const char* cause) {
    for (const LeaseRelease& r : rels) {
      std::ostringstream os;
      os << "fleet: lease on shard " << r.shard_id << " (worker w"
         << r.worker << ", fence " << r.fence << ", " << r.progress
         << " cell(s) reported) released: " << cause
         << "; shard returns to the pool for reassignment";
      log_line(os.str());
      annotate(os.str());
    }
  }

  void dispatch(Conn* c, const Message& m) {
    const auto now = Clock::now();
    if (m.type == "hello") {
      std::lock_guard lk(mu);
      c->rank = static_cast<int>(m.geti("rank", -1));
      c->pid = m.geti("pid");
      WorkerView& w = workers[c->rank];
      w.rank = c->rank;
      w.pid = c->pid;
      w.journal = m.get("journal");
      w.connected = true;
      w.exited = false;
      w.abnormal = false;
      const auto cells = static_cast<std::size_t>(m.geti("cells"));
      if (cells != table.total_cells()) {
        std::ostringstream os;
        os << "cell-count mismatch: coordinator enumerates "
           << table.total_cells() << " cells, worker w" << c->rank
           << " enumerates " << cells
           << " (config drift between coordinator and worker)";
        log_line("fleet: " + os.str());
        Message err;
        err.type = "error";
        err.set("reason", os.str());
        c->writer->send(err);
        return;
      }
      Message ack;
      ack.type = "hello_ack";
      ack.set("lease_s", std::to_string(opts.lease_s));
      ack.seti("shards", static_cast<long long>(table.total_shards()));
      ack.seti("cells", static_cast<long long>(table.total_cells()));
      c->writer->send(ack);
      std::ostringstream os;
      os << "fleet: worker w" << c->rank << " (pid " << c->pid
         << ") connected, journal " << w.journal;
      log_line(os.str());
    } else if (m.type == "lease_request") {
      std::lock_guard lk(mu);
      if (auto l = table.acquire(c->rank, now)) {
        Message grant;
        grant.type = "lease";
        grant.seti("shard", l->shard.id);
        grant.seti("begin", static_cast<long long>(l->shard.begin));
        grant.seti("end", static_cast<long long>(l->shard.end));
        grant.seti("fence", static_cast<long long>(l->fence));
        c->writer->send(grant);
        std::ostringstream os;
        os << "fleet: leased shard " << l->shard.id << " [" << l->shard.begin
           << "," << l->shard.end << ") to worker w" << c->rank << " (fence "
           << l->fence << ")";
        log_line(os.str());
      } else if (table.all_done()) {
        Message d;
        d.type = "drain";
        c->writer->send(d);
      } else {
        Message w;
        w.type = "wait";
        w.seti("ms",
               static_cast<long long>(opts.poll_interval_s * 1000.0) + 1);
        c->writer->send(w);
      }
    } else if (m.type == "heartbeat") {
      const auto shard = static_cast<std::uint32_t>(m.geti("shard"));
      const auto fence = static_cast<std::uint64_t>(m.geti("fence"));
      bool ok;
      {
        std::lock_guard lk(mu);
        ok = table.heartbeat(shard, fence,
                             static_cast<std::size_t>(m.geti("done")), now);
        if (!ok) ++this->fenced;
      }
      if (!ok) {
        Message f;
        f.type = "fenced";
        f.seti("shard", shard);
        f.seti("fence", static_cast<long long>(fence));
        c->writer->send(f);
      } else if (opts.on_heartbeat) {
        opts.on_heartbeat(c->rank, c->pid, shard);
      }
    } else if (m.type == "shard_done") {
      const auto shard = static_cast<std::uint32_t>(m.geti("shard"));
      const auto fence = static_cast<std::uint64_t>(m.geti("fence"));
      bool all = false;
      bool ok;
      {
        std::lock_guard lk(mu);
        ok = table.complete(shard, fence);
        if (ok) {
          executed += static_cast<std::size_t>(m.geti("executed"));
          hits += static_cast<std::size_t>(m.geti("hits"));
          quarantined += static_cast<std::size_t>(m.geti("quarantined"));
          workers[c->rank].shards_done++;
          all = table.all_done();
        } else {
          ++this->fenced;
        }
      }
      std::ostringstream os;
      if (ok) {
        os << "fleet: shard " << shard << " done by worker w" << c->rank
           << " (executed " << m.geti("executed") << ", hits "
           << m.geti("hits") << ", quarantined " << m.geti("quarantined")
           << ")";
      } else {
        os << "fleet: ignored stale completion of shard " << shard
           << " from worker w" << c->rank << " (fence " << fence
           << " lost the lease)";
        annotate(os.str());
      }
      log_line(os.str());
      if (all) cv.notify_all();
    } else if (m.type == "bye") {
      std::ostringstream os;
      os << "fleet: worker w" << c->rank << " drained cleanly";
      log_line(os.str());
    } else {
      log_line("fleet: ignoring unknown message type '" + m.type + "'");
    }
  }

  void on_disconnect(Conn* c) {
    std::vector<LeaseRelease> rels;
    {
      std::lock_guard lk(mu);
      c->open = false;
      if (c->rank >= 0) {
        workers[c->rank].connected = false;
        rels = table.release_worker(c->rank);
      }
    }
    note_releases(rels, "connection closed");
    cv.notify_all();
  }

  void reader_loop(Conn* c) {
    while (true) {
      auto m = read_message(c->fd);
      if (!m) break;
      dispatch(c, *m);
    }
    on_disconnect(c);
  }

  void accept_loop() {
    while (true) {
      const int fd = accept_connection(listener.fd);
      if (fd < 0) break;  // listener closed at shutdown
      auto conn = std::make_unique<Conn>();
      Conn* raw = conn.get();
      raw->fd = fd;
      raw->writer = std::make_unique<FrameWriter>(fd);
      raw->reader = std::thread([this, raw] { reader_loop(raw); });
      // shutdown() joins the accept thread before draining conns, so every
      // registration here is visible to (and cleaned up by) shutdown.
      std::lock_guard lk(mu);
      conns.push_back(std::move(conn));
    }
  }

  void expiry_loop() {
    std::unique_lock lk(mu);
    while (!stopping) {
      cv.wait_for(lk, std::chrono::duration<double>(opts.poll_interval_s));
      if (stopping) break;
      auto rels = table.expire(Clock::now());
      if (!rels.empty()) {
        lk.unlock();
        note_releases(rels, "lease expired (no heartbeat)");
        cv.notify_all();
        lk.lock();
      }
    }
  }

  std::string telemetry_section() const {
    std::lock_guard lk(mu);
    std::ostringstream o;
    o << "{\"shards\":" << table.total_shards()
      << ",\"done_shards\":" << table.done_shards()
      << ",\"leased_shards\":" << table.leased_shards()
      << ",\"cells\":" << table.total_cells()
      << ",\"done_cells\":" << table.done_cells()
      << ",\"lease_releases\":" << table.releases()
      << ",\"fenced\":" << fenced << ",\"workers\":[";
    bool first = true;
    for (const auto& [rank, w] : workers) {
      if (!first) o << ',';
      first = false;
      o << "{\"rank\":" << rank << ",\"pid\":" << w.pid
        << ",\"connected\":" << (w.connected ? "true" : "false")
        << ",\"exited\":" << (w.exited ? "true" : "false")
        << ",\"abnormal\":" << (w.abnormal ? "true" : "false")
        << ",\"shards_done\":" << w.shards_done << ",\"journal\":\""
        << obs::json_escape(w.journal) << "\"}";
    }
    o << "]}";
    return o.str();
  }

  bool unfinishable() const {
    // Under mu. The run can never finish when shards remain but nobody is
    // around to lease them: the spawner says no child is alive and no
    // connection is open.
    if (table.all_done()) return false;
    if (live_workers != 0) return false;
    for (const auto& c : conns) {
      if (c->open) return false;
    }
    return true;
  }
};

Coordinator::Coordinator(CoordinatorOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Coordinator::~Coordinator() { shutdown(); }

std::uint16_t Coordinator::start() {
  auto ls = listen_local();
  if (!ls) return 0;
  impl_->listener = *ls;
  impl_->started = true;
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
  impl_->expiry_thread = std::thread([this] { impl_->expiry_loop(); });
  obs::telemetry_register_section(
      "fleet", [im = impl_.get()] { return im->telemetry_section(); });
  return impl_->listener.port;
}

bool Coordinator::wait_until_done(double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(
                         timeout_s > 0 ? timeout_s : 365.0 * 86400.0);
  std::unique_lock lk(impl_->mu);
  while (true) {
    if (impl_->table.all_done()) return true;
    if (impl_->unfinishable()) return false;
    if (Clock::now() >= deadline) return false;
    impl_->cv.wait_for(
        lk, std::chrono::duration<double>(impl_->opts.poll_interval_s));
  }
}

void Coordinator::shutdown() {
  if (!impl_->started) return;
  {
    std::lock_guard lk(impl_->mu);
    if (impl_->stopping) return;
    impl_->stopping = true;
  }
  obs::telemetry_unregister_section("fleet");
  impl_->cv.notify_all();
  // Closing the listener unblocks accept(); join the accept thread first so
  // no new connections appear while we drain the existing ones.
  ::shutdown(impl_->listener.fd, SHUT_RDWR);
  ::close(impl_->listener.fd);
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  if (impl_->expiry_thread.joinable()) impl_->expiry_thread.join();
  for (auto& c : impl_->conns) {
    Message d;
    d.type = "drain";
    c->writer->send(d);
    c->writer->close();  // flush queued frames
    ::shutdown(c->fd, SHUT_RDWR);  // unblock the reader thread
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  impl_->conns.clear();
  impl_->started = false;
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard lk(impl_->mu);
  CoordinatorStats s;
  s.shards = impl_->table.total_shards();
  s.done_shards = impl_->table.done_shards();
  s.cells = impl_->table.total_cells();
  s.done_cells = impl_->table.done_cells();
  s.lease_releases = impl_->table.releases();
  s.fenced = impl_->fenced;
  s.executed = impl_->executed;
  s.hits = impl_->hits;
  s.quarantined = impl_->quarantined;
  s.workers.reserve(impl_->workers.size());
  for (const auto& [rank, w] : impl_->workers) s.workers.push_back(w);
  return s;
}

std::vector<std::string> Coordinator::worker_journals() const {
  std::lock_guard lk(impl_->mu);
  std::vector<std::string> out;
  for (const auto& [rank, w] : impl_->workers) {
    if (w.journal.empty()) continue;
    bool seen = false;
    for (const auto& p : out) seen = seen || p == w.journal;
    if (!seen) out.push_back(w.journal);
  }
  return out;
}

void Coordinator::note_worker_exit(long pid, bool clean_exit) {
  std::vector<LeaseRelease> rels;
  std::string death_note;
  {
    std::lock_guard lk(impl_->mu);
    WorkerView* w = nullptr;
    for (auto& [rank, view] : impl_->workers) {
      if (view.pid == pid) w = &view;
    }
    if (w == nullptr) return;
    w->exited = true;
    w->abnormal = !clean_exit;
    w->connected = false;
    rels = impl_->table.release_worker(w->rank);
    if (!clean_exit) {
      std::ostringstream os;
      os << "fleet: worker w" << w->rank << " (pid " << pid
         << ") died without a clean exit";
      const std::string dump = obs::flight_dump_path_for(pid);
      struct stat st{};
      if (::stat(dump.c_str(), &st) == 0) {
        w->flight_dump = dump;
        os << "; flight dump: " << dump;
      }
      death_note = os.str();
    }
  }
  if (!death_note.empty()) {
    impl_->log_line(death_note);
    impl_->annotate(death_note);
  }
  impl_->note_releases(rels, "worker process exited");
  impl_->cv.notify_all();
}

void Coordinator::set_live_workers(int n) {
  {
    std::lock_guard lk(impl_->mu);
    impl_->live_workers = n;
  }
  impl_->cv.notify_all();
}

}  // namespace indigo::fleet
