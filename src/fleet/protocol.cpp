#include "fleet/protocol.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

namespace indigo::fleet {
namespace {

bool read_exact(int fd, char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::read(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF mid-read
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string sanitize(std::string v) {
  for (char& c : v) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return v;
}

}  // namespace

std::string Message::get(const std::string& key,
                         const std::string& dflt) const {
  const auto it = fields.find(key);
  return it == fields.end() ? dflt : it->second;
}

long long Message::geti(const std::string& key, long long dflt) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return dflt;
  try {
    std::size_t used = 0;
    const long long v = std::stoll(it->second, &used);
    return used == it->second.size() ? v : dflt;
  } catch (const std::exception&) {
    return dflt;
  }
}

Message& Message::set(const std::string& key, std::string value) {
  fields[key] = sanitize(std::move(value));
  return *this;
}

Message& Message::seti(const std::string& key, long long value) {
  fields[key] = std::to_string(value);
  return *this;
}

std::string encode_message(const Message& m) {
  std::string out = sanitize(m.type);
  for (const auto& [k, v] : m.fields) {
    out += '\n';
    out += sanitize(k);
    out += '\t';
    out += sanitize(v);
  }
  return out;
}

std::optional<Message> decode_message(const std::string& payload) {
  std::istringstream is(payload);
  Message m;
  if (!std::getline(is, m.type) || m.type.empty()) return std::nullopt;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) continue;  // tolerate junk
    m.fields[line.substr(0, tab)] = line.substr(tab + 1);
  }
  return m;
}

bool write_frame(int fd, const std::string& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(len & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 24) & 0xff)};
  // One buffer, one write path: a frame is never half-prefixed on the wire
  // from this thread's perspective (the FrameWriter serializes threads).
  std::string buf(prefix, 4);
  buf += payload;
  return write_all(fd, buf.data(), buf.size());
}

std::optional<std::string> read_frame(int fd, std::size_t max_len) {
  char prefix[4];
  if (!read_exact(fd, prefix, 4)) return std::nullopt;
  const std::uint32_t len =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1])) << 8 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2])) << 16 |
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3])) << 24;
  if (len > max_len) return std::nullopt;
  std::string payload(len, '\0');
  if (len > 0 && !read_exact(fd, payload.data(), len)) return std::nullopt;
  return payload;
}

bool write_message(int fd, const Message& m) {
  return write_frame(fd, encode_message(m));
}

std::optional<Message> read_message(int fd) {
  const auto payload = read_frame(fd);
  if (!payload) return std::nullopt;
  return decode_message(*payload);
}

std::optional<ListenSocket> listen_local() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  return ListenSocket{fd, ntohs(addr.sin_port)};
}

int accept_connection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int connect_to(const std::string& host, std::uint16_t port,
               double timeout_s) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

struct FrameWriter::Impl {
  int fd;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> queue;
  bool stop = false;
  std::atomic<bool> failed{false};
  std::thread thread;

  explicit Impl(int fd_in) : fd(fd_in) {
    thread = std::thread([this] { loop(); });
  }

  void loop() {
    std::unique_lock lk(mu);
    for (;;) {
      cv.wait(lk, [&] { return stop || !queue.empty(); });
      if (queue.empty()) break;  // stop requested and flushed
      const std::string payload = std::move(queue.front());
      queue.pop_front();
      lk.unlock();
      if (!failed.load(std::memory_order_relaxed) &&
          !write_frame(fd, payload)) {
        failed.store(true, std::memory_order_relaxed);
      }
      lk.lock();
    }
  }
};

FrameWriter::FrameWriter(int fd) : impl_(new Impl(fd)) {}

FrameWriter::~FrameWriter() {
  close();
  delete impl_;
}

void FrameWriter::send(const Message& m) {
  if (impl_->failed.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard lk(impl_->mu);
    if (impl_->stop) return;
    impl_->queue.push_back(encode_message(m));
  }
  impl_->cv.notify_one();
}

void FrameWriter::close() {
  {
    std::lock_guard lk(impl_->mu);
    if (impl_->stop && !impl_->thread.joinable()) return;
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
}

bool FrameWriter::failed() const {
  return impl_->failed.load(std::memory_order_relaxed);
}

}  // namespace indigo::fleet
