// Fleet runtime, part 2: the shard lease table.
//
// Shards are handed out as time-bounded leases. A lease is renewed by
// heartbeats; a worker that stops heartbeating (hung, SIGKILLed, network
// gone) loses its lease at the deadline and the shard goes back to the
// unassigned pool for the next lease_request. Every grant carries a
// monotonically increasing *fence* token: messages about a shard that
// arrive with a fence older than the current grant are from a worker that
// already lost the lease and are rejected — the classic lease-fencing
// discipline that makes reassignment safe even when the "dead" worker is
// merely slow (its journal entries are deduplicated at merge time, so a
// fenced completion wastes work but never corrupts the canonical store).
//
// The table is externally synchronized (the coordinator holds one mutex
// over all connection state) and takes explicit time points, so lease
// expiry is unit-testable with a fake clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "sched/shard.hpp"

namespace indigo::fleet {

using TimePoint = std::chrono::steady_clock::time_point;

enum class ShardState : std::uint8_t { Unassigned, Leased, Done };
const char* to_string(ShardState s);

/// A granted lease: the shard plus its fence token.
struct Lease {
  sched::ShardSpec shard;
  std::uint64_t fence = 0;
};

/// One released lease (expiry or connection death), for logging.
struct LeaseRelease {
  std::uint32_t shard_id = 0;
  int worker = -1;
  std::uint64_t fence = 0;
  std::size_t progress = 0;  // cells the worker had reported done
};

class LeaseTable {
 public:
  LeaseTable(std::vector<sched::ShardSpec> shards, double lease_s);

  /// Grants the lowest unassigned shard to `worker`, or nullopt when none
  /// is free (distinguish via all_done()).
  std::optional<Lease> acquire(int worker, TimePoint now);

  /// Renews the lease and records progress. False when the fence is stale
  /// or the shard is not leased — the sender lost the lease.
  bool heartbeat(std::uint32_t shard_id, std::uint64_t fence,
                 std::size_t done_cells, TimePoint now);

  /// Marks the shard done. False when the fence is stale (the completion is
  /// ignored; whoever holds the current lease finishes it).
  bool complete(std::uint32_t shard_id, std::uint64_t fence);

  /// Releases every leased shard whose deadline passed; they return to the
  /// unassigned pool with a bumped fence on the next acquire.
  std::vector<LeaseRelease> expire(TimePoint now);

  /// Releases every lease held by `worker` immediately (its connection
  /// died; no point waiting out the deadline).
  std::vector<LeaseRelease> release_worker(int worker);

  [[nodiscard]] bool all_done() const { return done_ == shards_.size(); }
  [[nodiscard]] std::size_t total_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t done_shards() const { return done_; }
  [[nodiscard]] std::size_t leased_shards() const { return leased_; }
  [[nodiscard]] std::size_t total_cells() const { return total_cells_; }
  /// Cells in completed shards plus live heartbeat progress.
  [[nodiscard]] std::size_t done_cells() const;
  /// Leases released by expiry or connection death (each one is a
  /// reassignment once another worker acquires the shard).
  [[nodiscard]] std::uint64_t releases() const { return releases_; }

  /// Per-shard view for the telemetry section.
  struct ShardView {
    sched::ShardSpec spec;
    ShardState state = ShardState::Unassigned;
    int worker = -1;
    std::uint64_t fence = 0;
    std::size_t progress = 0;
  };
  [[nodiscard]] std::vector<ShardView> snapshot() const;

 private:
  struct Entry {
    sched::ShardSpec spec;
    ShardState state = ShardState::Unassigned;
    int worker = -1;
    std::uint64_t fence = 0;  // fence of the current/last grant
    TimePoint deadline{};
    std::size_t progress = 0;
  };
  std::vector<Entry> shards_;
  std::chrono::steady_clock::duration lease_{};
  std::size_t done_ = 0;
  std::size_t leased_ = 0;
  std::size_t total_cells_ = 0;
  std::uint64_t next_fence_ = 1;  // 0 is never a valid fence
  std::uint64_t releases_ = 0;
};

}  // namespace indigo::fleet
