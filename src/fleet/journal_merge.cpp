#include "fleet/journal_merge.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <sstream>

namespace indigo::fleet {

FleetMergeStats merge_worker_journals(
    sched::ResultStore& canonical, const std::vector<std::string>& paths,
    const std::function<void(const std::string&)>& log) {
  FleetMergeStats out;
  for (const std::string& path : paths) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      ++out.missing;
      continue;
    }
    const sched::MergeStats ms = canonical.merge_from_file(path);
    ++out.files;
    out.totals.merged += ms.merged;
    out.totals.duplicates += ms.duplicates;
    out.totals.conflicts += ms.conflicts;
    out.totals.comments += ms.comments;
    out.totals.malformed += ms.malformed;
    out.torn_tails = out.torn_tails || ms.torn_tail;

    std::ostringstream note;
    note << "fleet-merge " << path << ": " << ms.merged << " merged, "
         << ms.duplicates << " duplicate(s), " << ms.conflicts
         << " conflict(s), " << ms.comments << " annotation(s)";
    if (ms.torn_tail) note << ", torn tail repaired";
    if (ms.malformed > 0) note << ", " << ms.malformed << " malformed";
    canonical.annotate(note.str());
    if (log) log(note.str());
    // Remove the merged journal: its entries are durable in the canonical
    // store now, and a later fleet run must not re-merge a stale file.
    ::unlink(path.c_str());
  }
  return out;
}

}  // namespace indigo::fleet
