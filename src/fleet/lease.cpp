#include "fleet/lease.hpp"

#include <utility>

namespace indigo::fleet {

const char* to_string(ShardState s) {
  switch (s) {
    case ShardState::Unassigned: return "unassigned";
    case ShardState::Leased: return "leased";
    case ShardState::Done: return "done";
  }
  return "?";
}

LeaseTable::LeaseTable(std::vector<sched::ShardSpec> shards, double lease_s)
    : lease_(std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(lease_s))) {
  shards_.reserve(shards.size());
  for (sched::ShardSpec& s : shards) {
    total_cells_ += s.size();
    shards_.push_back(Entry{std::move(s)});
  }
}

std::optional<Lease> LeaseTable::acquire(int worker, TimePoint now) {
  for (Entry& e : shards_) {
    if (e.state != ShardState::Unassigned) continue;
    e.state = ShardState::Leased;
    e.worker = worker;
    e.fence = next_fence_++;
    e.deadline = now + lease_;
    e.progress = 0;  // a reassigned shard restarts from its own journal
    ++leased_;
    return Lease{e.spec, e.fence};
  }
  return std::nullopt;
}

bool LeaseTable::heartbeat(std::uint32_t shard_id, std::uint64_t fence,
                           std::size_t done_cells, TimePoint now) {
  if (shard_id >= shards_.size()) return false;
  Entry& e = shards_[shard_id];
  if (e.state != ShardState::Leased || e.fence != fence) return false;
  e.deadline = now + lease_;
  e.progress = done_cells;
  return true;
}

bool LeaseTable::complete(std::uint32_t shard_id, std::uint64_t fence) {
  if (shard_id >= shards_.size()) return false;
  Entry& e = shards_[shard_id];
  if (e.state != ShardState::Leased || e.fence != fence) return false;
  e.state = ShardState::Done;
  e.progress = e.spec.size();
  --leased_;
  ++done_;
  return true;
}

std::vector<LeaseRelease> LeaseTable::expire(TimePoint now) {
  std::vector<LeaseRelease> out;
  for (Entry& e : shards_) {
    if (e.state != ShardState::Leased || e.deadline > now) continue;
    out.push_back({e.spec.id, e.worker, e.fence, e.progress});
    e.state = ShardState::Unassigned;
    e.worker = -1;
    e.progress = 0;  // forfeited: the shard restarts under its next lease
    --leased_;
    ++releases_;
  }
  return out;
}

std::vector<LeaseRelease> LeaseTable::release_worker(int worker) {
  std::vector<LeaseRelease> out;
  for (Entry& e : shards_) {
    if (e.state != ShardState::Leased || e.worker != worker) continue;
    out.push_back({e.spec.id, e.worker, e.fence, e.progress});
    e.state = ShardState::Unassigned;
    e.worker = -1;
    e.progress = 0;  // forfeited: the shard restarts under its next lease
    --leased_;
    ++releases_;
  }
  return out;
}

std::size_t LeaseTable::done_cells() const {
  std::size_t n = 0;
  for (const Entry& e : shards_) {
    n += e.state == ShardState::Done ? e.spec.size() : e.progress;
  }
  return n;
}

std::vector<LeaseTable::ShardView> LeaseTable::snapshot() const {
  std::vector<ShardView> out;
  out.reserve(shards_.size());
  for (const Entry& e : shards_) {
    out.push_back({e.spec, e.state, e.worker, e.fence, e.progress});
  }
  return out;
}

}  // namespace indigo::fleet
