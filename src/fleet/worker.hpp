// Fleet runtime, part 5: the worker daemon loop.
//
// A worker connects to the coordinator, registers with hello, then loops:
// request a lease, run the shard through the caller-supplied run_shard
// callback (the sweep binary wires this to the in-process Executor over its
// own journaled ResultStore), heartbeat at a third of the lease period
// while the shard executes, and report shard_done. A `fenced` reply to a
// heartbeat means the lease was lost (the coordinator reassigned the
// shard); the worker finishes or abandons locally but must not report the
// shard done. `drain` means no work is left: say bye and exit 0.
//
// run_worker never touches graphs itself — the callback owns all sweep
// state — so this file stays transport-only and testable with a synthetic
// deterministic run_shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "sched/shard.hpp"

namespace indigo::fleet {

/// What one shard run produced, in cells. executed + hits + quarantined
/// must equal the shard size when ok.
struct ShardOutcome {
  std::size_t executed = 0;
  std::size_t hits = 0;
  std::size_t quarantined = 0;
};

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int rank = 0;
  /// Reported in hello; the coordinator collects it for the merge list.
  std::string journal;
  /// Local cell-enumeration size; a mismatch with the coordinator's count
  /// is fatal (config drift between the two processes).
  std::size_t total_cells = 0;
  double connect_timeout_s = 10.0;
  /// Runs one shard. Must bump `progress` as cells finish (the heartbeat
  /// thread reads it); called on the worker main thread.
  std::function<ShardOutcome(const sched::ShardSpec&,
                             std::atomic<std::size_t>&)>
      run_shard;
  /// One human-readable line per event. May be null.
  std::function<void(const std::string&)> log;
};

/// Runs the daemon loop until drain (returns 0) or a fatal error — connect
/// failure, cell-count mismatch, coordinator gone (returns nonzero).
int run_worker(const WorkerOptions& opts);

}  // namespace indigo::fleet
