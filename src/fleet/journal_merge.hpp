// Fleet runtime, part 3: folding worker journals into the canonical store.
//
// Every fleet worker appends to its own per-rank journal (the ResultStore's
// advisory flock makes sharing a file a hard error, deliberately). After
// the run the coordinator merges them into the canonical ResultStore:
// entries are deduplicated by job key (the canonical entry always wins — a
// fenced worker that finished a reassigned shard anyway contributes nothing
// new), `# ` annotations are carried over so quarantine audit trails
// survive, and a torn tail left by a SIGKILLed worker is dropped exactly
// like ResultStore's own open-time repair. Merged journals are removed on
// success so a resumed fleet run cannot double-merge stale files.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sched/result_store.hpp"

namespace indigo::fleet {

struct FleetMergeStats {
  std::size_t files = 0;    // journals found and merged
  std::size_t missing = 0;  // paths with no file (worker never wrote one)
  sched::MergeStats totals; // summed per-file stats
  bool torn_tails = false;  // at least one journal ended mid-append
};

/// Merges every existing `paths` journal into `canonical` (in order; dedup
/// by key, first occurrence wins), annotates the canonical journal with one
/// `# fleet-merge ...` line per file, and unlinks successfully merged
/// files. `log`, when set, receives one human-readable line per file.
FleetMergeStats merge_worker_journals(
    sched::ResultStore& canonical, const std::vector<std::string>& paths,
    const std::function<void(const std::string&)>& log = nullptr);

}  // namespace indigo::fleet
