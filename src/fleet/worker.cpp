#include "fleet/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "fleet/protocol.hpp"

namespace indigo::fleet {

namespace {

// Mailbox shared between the socket reader thread and the main loop.
// `fenced` replies are routed out-of-band: the main thread is busy inside
// run_shard when one arrives, and the heartbeat thread needs to see it
// without draining the mailbox.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> box;
  bool eof = false;

  // Current lease, for fencing. shard == -1 means no lease held.
  std::atomic<long long> shard{-1};
  std::atomic<unsigned long long> fence{0};
  std::atomic<bool> fenced{false};

  std::optional<Message> wait_any() {
    std::unique_lock lk(mu);
    cv.wait(lk, [this] { return eof || !box.empty(); });
    if (box.empty()) return std::nullopt;  // eof
    Message m = std::move(box.front());
    box.pop_front();
    return m;
  }
};

void reader_loop(int fd, Mailbox& mb) {
  while (true) {
    auto m = read_message(fd);
    if (!m) break;
    if (m->type == "fenced") {
      if (m->geti("shard") == mb.shard.load() &&
          static_cast<unsigned long long>(m->geti("fence")) ==
              mb.fence.load()) {
        mb.fenced.store(true);
      }
      continue;
    }
    {
      std::lock_guard lk(mb.mu);
      mb.box.push_back(std::move(*m));
    }
    mb.cv.notify_all();
  }
  {
    std::lock_guard lk(mb.mu);
    mb.eof = true;
  }
  mb.cv.notify_all();
}

}  // namespace

int run_worker(const WorkerOptions& opts) {
  const auto say = [&opts](const std::string& s) {
    if (opts.log) opts.log(s);
  };

  const int fd = connect_to(opts.host, opts.port, opts.connect_timeout_s);
  if (fd < 0) {
    say("fleet worker w" + std::to_string(opts.rank) +
        ": cannot connect to coordinator");
    return 2;
  }
  Mailbox mb;
  std::thread reader([fd, &mb] { reader_loop(fd, mb); });
  FrameWriter writer(fd);

  const auto finish = [&](int code) {
    writer.close();
    ::shutdown(fd, SHUT_RDWR);
    reader.join();
    ::close(fd);
    return code;
  };

  Message hello;
  hello.type = "hello";
  hello.seti("rank", opts.rank);
  hello.seti("pid", static_cast<long long>(::getpid()));
  hello.set("journal", opts.journal);
  hello.seti("cells", static_cast<long long>(opts.total_cells));
  writer.send(hello);

  auto ack = mb.wait_any();
  if (!ack || ack->type == "error") {
    say("fleet worker w" + std::to_string(opts.rank) + ": " +
        (ack ? "rejected: " + ack->get("reason")
             : "coordinator closed the connection before hello_ack"));
    return finish(3);
  }
  if (ack->type != "hello_ack") {
    say("fleet worker w" + std::to_string(opts.rank) +
        ": unexpected reply to hello: " + ack->type);
    return finish(3);
  }
  double lease_s = std::strtod(ack->get("lease_s", "10").c_str(), nullptr);
  if (!(lease_s > 0)) lease_s = 10.0;

  while (true) {
    Message req;
    req.type = "lease_request";
    req.seti("rank", opts.rank);
    writer.send(req);

    auto m = mb.wait_any();
    if (!m) {
      say("fleet worker w" + std::to_string(opts.rank) +
          ": coordinator gone; exiting");
      return finish(4);
    }
    if (m->type == "drain") {
      Message bye;
      bye.type = "bye";
      bye.seti("rank", opts.rank);
      writer.send(bye);
      say("fleet worker w" + std::to_string(opts.rank) + ": drained");
      return finish(0);
    }
    if (m->type == "wait") {
      const long long ms = m->geti("ms", 100);
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      continue;
    }
    if (m->type == "error") {
      say("fleet worker w" + std::to_string(opts.rank) +
          ": coordinator error: " + m->get("reason"));
      return finish(3);
    }
    if (m->type != "lease") {
      say("fleet worker w" + std::to_string(opts.rank) +
          ": ignoring unexpected message: " + m->type);
      continue;
    }

    sched::ShardSpec spec;
    spec.id = static_cast<std::uint32_t>(m->geti("shard"));
    spec.begin = static_cast<std::size_t>(m->geti("begin"));
    spec.end = static_cast<std::size_t>(m->geti("end"));
    const auto fence = static_cast<unsigned long long>(m->geti("fence"));
    mb.fenced.store(false);
    mb.fence.store(fence);
    mb.shard.store(spec.id);

    {
      std::ostringstream os;
      os << "fleet worker w" << opts.rank << ": running shard " << spec.id
         << " [" << spec.begin << "," << spec.end << ") fence " << fence;
      say(os.str());
    }

    // Heartbeat at a third of the lease period while run_shard executes.
    std::atomic<std::size_t> progress{0};
    std::atomic<bool> hb_stop{false};
    std::thread hb([&] {
      const auto period = std::chrono::duration<double>(lease_s / 3.0);
      while (!hb_stop.load()) {
        Message beat;
        beat.type = "heartbeat";
        beat.seti("shard", spec.id);
        beat.seti("fence", static_cast<long long>(fence));
        beat.seti("done", static_cast<long long>(progress.load()));
        writer.send(beat);
        const auto deadline = std::chrono::steady_clock::now() + period;
        while (!hb_stop.load() &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
    });

    ShardOutcome out = opts.run_shard(spec, progress);
    hb_stop.store(true);
    hb.join();
    mb.shard.store(-1);

    if (mb.fenced.load()) {
      // Lost the lease mid-shard: the coordinator already reassigned it.
      // Local journal entries are harmless (deduplicated at merge time) but
      // the completion must not be reported.
      std::ostringstream os;
      os << "fleet worker w" << opts.rank << ": shard " << spec.id
         << " was fenced (fence " << fence
         << "); dropping local completion";
      say(os.str());
      continue;
    }
    Message done;
    done.type = "shard_done";
    done.seti("shard", spec.id);
    done.seti("fence", static_cast<long long>(fence));
    done.seti("executed", static_cast<long long>(out.executed));
    done.seti("hits", static_cast<long long>(out.hits));
    done.seti("quarantined", static_cast<long long>(out.quarantined));
    writer.send(done);
  }
}

}  // namespace indigo::fleet
