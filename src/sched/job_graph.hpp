// Sweep runtime, part 1: the job model.
//
// The paper's experiment is ~1034 independent (variant x graph) measurements
// plus a handful of ordered stages around them (materialize the input,
// measure, verify, aggregate). A JobGraph captures exactly that: a DAG of
// named jobs with explicit dependencies, each tagged with an execution class
// that tells the Executor (executor.hpp) how the job may share the machine:
//
//   ModelTimed  - the job's metric comes from the vcuda analytic timing
//                 model, not the wall clock, so any number of them may run
//                 concurrently without distorting the paper's ratios.
//   WallClock   - the job's metric IS the wall clock (OpenMP / C++-threads
//                 measurements). These serialize through an exclusive lane:
//                 while one runs, nothing else does, so oversubscription
//                 can never leak into a reported CPU time.
//
// Robustness knobs (deadline, bounded retry with backoff) live on the Job;
// a job that still fails after its retries is *quarantined* - recorded and
// excluded, exactly like the paper excludes failed runs - instead of
// aborting the whole sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace indigo::sched {

using JobId = std::uint32_t;
inline constexpr JobId kInvalidJob = static_cast<JobId>(-1);

enum class ExecClass : std::uint8_t {
  ModelTimed,  // metric is simulated; may share the machine
  WallClock,   // metric is wall time; exclusive lane
};

const char* to_string(ExecClass c);

/// Handed to the job body. A job that can run long should poll cancelled()
/// and return early: after a deadline expires the Executor abandons the
/// attempt and only the token tells the (now detached) body to stop.
struct JobContext {
  JobId id = kInvalidJob;
  int attempt = 0;  // 0 on the first try, +1 per retry
  std::shared_ptr<const std::atomic<bool>> cancel;

  [[nodiscard]] bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
};

struct Job {
  std::string name;
  ExecClass exec_class = ExecClass::ModelTimed;
  std::function<void(const JobContext&)> work;
  /// Seconds one attempt may run before it is abandoned; 0 = no deadline.
  double timeout_s = 0;
  /// Extra attempts after a failed one (throw or deadline).
  int max_retries = 0;
  /// Base delay before a retry; attempt k waits k * retry_backoff_s.
  double retry_backoff_s = 0.05;
  /// Cell index in the sweep's deterministic cell enumeration, or -1 for
  /// infrastructure jobs. Tagged jobs are the unit of fleet sharding
  /// (shard.hpp): a worker process rebuilds the enumeration locally and
  /// runs only the cells inside its leased [begin, end) range.
  std::int64_t shard_cell = -1;
  /// Data-locality key, or -1 for none. Jobs sharing an affinity value are
  /// seeded onto the same worker's deque (sweeps use the graph index), so a
  /// worker's per-thread caches — the device-memory arena's free-list
  /// shapes and the GraphResidency copies — stay warm run-to-run. Advisory:
  /// work stealing may still migrate jobs when a worker runs dry.
  std::int64_t affinity = -1;
};

enum class JobState : std::uint8_t {
  Pending,      // waiting on dependencies or queued
  Running,      // an attempt is executing
  Done,         // completed normally
  Quarantined,  // failed every attempt; excluded, dependents still ran
};

enum class FailureKind : std::uint8_t { None, Exception, Timeout };

const char* to_string(JobState s);
const char* to_string(FailureKind f);

struct JobStatus {
  JobState state = JobState::Pending;
  FailureKind failure = FailureKind::None;
  std::string error;     // last failure description, empty when none
  int attempts = 0;      // attempts started
  double run_seconds = 0;  // summed across attempts (abandoned ones too)
  /// Path of the flight-recorder dump taken when an attempt failed (empty
  /// when the recorder is disarmed or the job never failed).
  std::string flight_dump;
};

/// A DAG of jobs. add() returns the id used for depend(); the graph is
/// consumed by Executor::run, which validates acyclicity.
class JobGraph {
 public:
  JobId add(Job j);

  /// Declares that `job` may only start after `on` reached a terminal
  /// state (Done or Quarantined - dependents of a quarantined job still
  /// run, so one crashing measurement cannot starve the aggregation).
  void depend(JobId job, JobId on);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] const Job& job(JobId id) const { return jobs_[id]; }
  [[nodiscard]] Job& job(JobId id) { return jobs_[id]; }
  [[nodiscard]] const std::vector<JobId>& deps(JobId id) const {
    return deps_[id];
  }

 private:
  std::vector<Job> jobs_;
  std::vector<std::vector<JobId>> deps_;  // deps_[j] = jobs j waits on
};

}  // namespace indigo::sched
