// Sweep runtime, part 2: the work-stealing executor.
//
// A worker pool drains a JobGraph. Each worker owns a deque; jobs released
// by a finishing dependency are pushed onto the finisher's own deque (the
// dependent usually touches the data the finisher just produced), and idle
// workers steal from the *back* of a victim's deque, classic work-stealing
// style. Retries wait in a time-ordered heap until their backoff expires.
//
// The execution-class invariant (job_graph.hpp) is enforced with a
// shared_mutex "lane": ModelTimed jobs run under a shared lock, WallClock
// jobs under the unique lock, so a wall-clock-timed measurement never
// shares the machine with anything - not even a model-timed job burning
// cores in the simulator.
//
// Deadlines: an attempt with a timeout runs on a helper thread. If it does
// not finish in time the attempt is abandoned (helper detached, cancel
// token set - bodies poll JobContext::cancelled() to stop promptly) and the
// job retries or is quarantined. Attempts without a timeout run inline on
// the worker.
//
// Everything observable feeds the obs layer (sched.* counters, a "job" span
// per attempt) plus an always-on internal tally that progress() serves even
// when the obs layer is off.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <shared_mutex>
#include <vector>

#include "sched/job_graph.hpp"

namespace indigo::sched {

/// Point-in-time view of a running (or finished) graph execution.
struct Progress {
  std::size_t total = 0;
  std::size_t done = 0;         // terminal: Done + Quarantined
  std::size_t running = 0;
  std::size_t quarantined = 0;
  std::size_t queue_depth = 0;  // ready + backoff-delayed jobs
  std::uint64_t steals = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  double elapsed_s = 0;
  /// Naive rate estimate; < 0 while nothing finished yet.
  double eta_s = -1;
};

struct ExecutorOptions {
  /// Worker threads. <= 0 resolves INDIGO_SCHED_WORKERS, else
  /// max(2, min(hardware_concurrency, 8)) - at least 2 so the scheduler
  /// machinery is genuinely exercised (same rationale as cpu_threads()).
  int num_workers = 0;
  /// Invoked from a monitor thread roughly every progress_interval_s while
  /// run() is active, and once more just before run() returns.
  std::function<void(const Progress&)> on_progress;
  double progress_interval_s = 0.5;
  /// Process-level worker identity ("w3" for fleet rank 3) attached to every
  /// job span as the "proc" arg and to the executor telemetry section, so
  /// merged traces from many worker processes attribute time per worker, not
  /// just per thread. Empty = "pid<pid>".
  std::string worker_label;
};

class Executor {
 public:
  explicit Executor(ExecutorOptions opts = {});

  /// Runs the whole graph to quiescence and returns one JobStatus per job
  /// (indexed by JobId). Throws std::invalid_argument on a cyclic graph.
  /// Job failures never throw - they end up Quarantined in the statuses.
  std::vector<JobStatus> run(const JobGraph& graph);

  [[nodiscard]] int num_workers() const { return workers_; }

  /// Resolution used for ExecutorOptions::num_workers (exposed for callers
  /// that want to report the effective pool size).
  static int resolve_workers(int requested);

 private:
  struct RunState;
  void worker_loop(RunState& rs, int w);
  void execute(RunState& rs, int w, JobId id);
  void finish(RunState& rs, int w, JobId id, FailureKind failure,
              const std::string& error, double attempt_s);

  ExecutorOptions opts_;
  int workers_;
};

}  // namespace indigo::sched
