// Sweep runtime, part 3: the journaled result store.
//
// Replaces the harness's raw CSV append path. The store is an in-memory
// key -> entry map backed by an append-only journal file with real
// durability discipline:
//
//   - Appends go through one kept-open O_APPEND descriptor and are
//     fsync'd (INDIGO_SCHED_FSYNC=0 opts out), so a killed run can lose at
//     most the entry being written, never corrupt earlier ones.
//   - Opening replays the journal; every replayed entry is a "journal hit"
//     an interrupted sweep resumes from without re-executing anything.
//   - A torn final line (kill mid-write) is skipped with a warning and the
//     file is repaired (newline-terminated) before new appends, so a torn
//     write can never splice itself into the next one.
//   - checkpoint() compacts the journal via write-temp-fsync-rename: the
//     file is atomically replaced by a sorted, deduplicated snapshot.
//
// The file format is line-oriented and schema-versioned: a `#indigo-results
// v2` header, then one `key \t seconds \t throughput \t iterations \t
// verified [\t metrics]` line per entry (doubles at full round-trip
// precision; metrics encoded `name=value;...`). Files from before the
// header existed (v1) load unchanged; `#`-lines are comments.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <mutex>
#include <string>

namespace indigo::sched {

/// One stored measurement result (the harness's cache entry shape).
struct ResultEntry {
  double seconds = 0;
  double throughput = 0;
  std::uint64_t iterations = 0;
  bool verified = false;
  std::map<std::string, double> metrics;

  friend bool operator==(const ResultEntry&, const ResultEntry&) = default;
};

/// Accounting of one merge_from_file call (fleet journal merging).
struct MergeStats {
  std::size_t merged = 0;      // new keys appended to this store
  std::size_t duplicates = 0;  // keys already present with the same value
  std::size_t conflicts = 0;   // keys already present with a different
                               // value; the existing entry wins
  std::size_t comments = 0;    // `# ` annotation lines carried over
  std::size_t malformed = 0;   // undecodable lines skipped
  bool torn_tail = false;      // source ended mid-line; tail dropped

  [[nodiscard]] std::size_t total_entries() const {
    return merged + duplicates + conflicts;
  }
};

class ResultStore {
 public:
  /// Opens (and replays) the journal at `path`; empty path = memory-only.
  /// Takes an advisory exclusive flock on the journal so two processes
  /// appending to the same file fail fast (std::runtime_error) instead of
  /// silently interleaving records; readers (preload, merge_from_file) are
  /// unaffected.
  explicit ResultStore(std::string path);
  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Thread-safe lookup; copies the entry out.
  [[nodiscard]] std::optional<ResultEntry> find(const std::string& key) const;

  /// Thread-safe insert-or-overwrite, journaled durably before returning.
  void put(const std::string& key, const ResultEntry& e);

  /// Appends `note` to the journal as a `# `-prefixed comment line (replay
  /// skips comments, checkpoint drops them). Used to attach context that is
  /// not a result — quarantine records with their flight-dump reference —
  /// without affecting resume semantics. Newlines in `note` are replaced.
  void annotate(const std::string& note);

  /// Compacts the journal: writes header + all entries (sorted by key) to a
  /// temp file, fsyncs, renames over the journal. Returns false (journal
  /// intact) if anything fails. Memory-only stores return true.
  bool checkpoint();

  /// Replays another journal file into memory WITHOUT journaling anything:
  /// entries whose key is absent become in-memory hits, present keys keep
  /// their value. A fleet worker preloads the canonical journal this way so
  /// already-measured cells resolve as hits without re-appending them to its
  /// own journal. Returns the number of entries added; a missing file adds
  /// zero.
  std::size_t preload(const std::string& path);

  /// Merges another journal file into this store, journaled durably: new
  /// keys are appended (dedup by key — an existing entry always wins), `# `
  /// comment lines are re-annotated so audit trails survive the merge, a
  /// torn tail in the source is dropped exactly like open-time repair. The
  /// coordinator folds every worker journal into the canonical store with
  /// this after a fleet run.
  MergeStats merge_from_file(const std::string& path);

  [[nodiscard]] std::size_t size() const;
  /// Entries replayed from the journal when the store was opened.
  [[nodiscard]] std::size_t journal_hits() const { return journal_hits_; }
  /// Entries put() since the store was opened.
  [[nodiscard]] std::size_t appended() const;
  /// Journal lines dropped as malformed when the store was opened.
  [[nodiscard]] std::size_t malformed() const { return malformed_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// One journal line for (key, entry), newline-terminated.
  static std::string encode_line(const std::string& key, const ResultEntry& e);
  /// Parses one journal line; nullopt on any malformation.
  static std::optional<std::pair<std::string, ResultEntry>> decode_line(
      const std::string& line);

  static constexpr const char* kHeader = "#indigo-results v2";

 private:
  void append_line(const std::string& line);

  std::string path_;
  mutable std::mutex mu_;
  std::map<std::string, ResultEntry> entries_;
  std::size_t journal_hits_ = 0;
  std::size_t appended_ = 0;
  std::size_t malformed_ = 0;
  int fd_ = -1;      // kept-open append descriptor
  bool fsync_ = true;
};

}  // namespace indigo::sched
