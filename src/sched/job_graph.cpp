#include "sched/job_graph.hpp"

#include <stdexcept>

namespace indigo::sched {

const char* to_string(ExecClass c) {
  switch (c) {
    case ExecClass::ModelTimed: return "model_timed";
    case ExecClass::WallClock: return "wall_clock";
  }
  return "?";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Quarantined: return "quarantined";
  }
  return "?";
}

const char* to_string(FailureKind f) {
  switch (f) {
    case FailureKind::None: return "none";
    case FailureKind::Exception: return "exception";
    case FailureKind::Timeout: return "timeout";
  }
  return "?";
}

JobId JobGraph::add(Job j) {
  if (!j.work) throw std::invalid_argument("JobGraph::add: job has no work");
  jobs_.push_back(std::move(j));
  deps_.emplace_back();
  return static_cast<JobId>(jobs_.size() - 1);
}

void JobGraph::depend(JobId job, JobId on) {
  if (job >= jobs_.size() || on >= jobs_.size()) {
    throw std::out_of_range("JobGraph::depend: unknown job id");
  }
  if (job == on) throw std::invalid_argument("JobGraph::depend: self-edge");
  deps_[job].push_back(on);
}

}  // namespace indigo::sched
