#include "sched/result_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace indigo::sched {
namespace {

/// metrics map <-> journal field. Encoded as `name=value;name=value` — no
/// tabs (the field separator) and no '=' or ';' appear in counter names by
/// construction.
std::string encode_metrics(const std::map<std::string, double>& metrics) {
  std::ostringstream os;
  os.precision(17);
  bool first = true;
  for (const auto& [k, v] : metrics) {
    if (!first) os << ';';
    first = false;
    os << k << '=' << v;
  }
  return os.str();
}

bool decode_metrics(const std::string& field,
                    std::map<std::string, double>& out) {
  std::istringstream is(field);
  std::string item;
  while (std::getline(is, item, ';')) {
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    try {
      std::size_t used = 0;
      const double v = std::stod(item.substr(eq + 1), &used);
      if (used != item.size() - eq - 1) return false;
      out[item.substr(0, eq)] = v;
    } catch (const std::exception&) {
      return false;
    }
  }
  return true;
}

/// fsync the directory containing `path` so a freshly renamed file survives
/// a crash of the whole machine, not just the process.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// Takes the advisory writer lock on an open journal descriptor. Advisory
/// only — every writer in this codebase goes through ResultStore, so two
/// cooperating processes can never interleave appends; a reader never locks.
bool try_lock_journal(int fd) { return ::flock(fd, LOCK_EX | LOCK_NB) == 0; }

bool write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string ResultStore::encode_line(const std::string& key,
                                     const ResultEntry& e) {
  std::ostringstream os;
  os.precision(17);  // doubles must round-trip exactly
  os << key << '\t' << e.seconds << '\t' << e.throughput << '\t'
     << e.iterations << '\t' << (e.verified ? 1 : 0);
  if (!e.metrics.empty()) os << '\t' << encode_metrics(e.metrics);
  os << '\n';
  return os.str();
}

std::optional<std::pair<std::string, ResultEntry>> ResultStore::decode_line(
    const std::string& line) {
  // key \t seconds \t throughput \t iterations \t verified [\t metrics]
  std::istringstream ls(line);
  std::string key, metrics_field;
  ResultEntry e{};
  int verified = 0;
  const bool core_ok =
      static_cast<bool>(std::getline(ls, key, '\t')) && !key.empty() &&
      static_cast<bool>(ls >> e.seconds >> e.throughput >> e.iterations >>
                        verified) &&
      (verified == 0 || verified == 1) && e.seconds >= 0;
  if (!core_ok) return std::nullopt;
  // Optional 6th field; tolerate its absence (pre-metrics journals).
  ls >> std::ws;
  if (std::getline(ls, metrics_field, '\t')) {
    if (!decode_metrics(metrics_field, e.metrics)) return std::nullopt;
  }
  e.verified = verified != 0;
  return std::make_pair(std::move(key), std::move(e));
}

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  const char* env = std::getenv("INDIGO_SCHED_FSYNC");
  fsync_ = env == nullptr || std::string(env) != "0";
  if (path_.empty()) return;
  bool torn = false;
  off_t keep = 0;  // journal length up to (not including) a torn tail
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      torn = !text.empty() && text.back() != '\n';
      keep = static_cast<off_t>(text.rfind('\n') + 1);
      if (!torn) keep = static_cast<off_t>(text.size());
      std::istringstream is(text);
      std::string line;
      std::size_t lineno = 0;
      while (std::getline(is, line)) {
        ++lineno;
        if (line.empty()) continue;
        if (line.front() == '#') continue;  // header / comments
        // A file without a trailing newline was cut mid-write; its final
        // line may be incomplete even if it happens to parse, so drop it.
        const bool is_torn_tail = torn && is.eof();
        std::optional<std::pair<std::string, ResultEntry>> parsed;
        if (!is_torn_tail) parsed = decode_line(line);
        if (!parsed) {
          ++malformed_;
          std::cerr << "[warn] " << path_ << ':' << lineno
                    << (is_torn_tail
                            ? ": dropping torn (malformed) final line\n"
                            : ": skipping malformed cache line\n");
          continue;
        }
        entries_[parsed->first] = std::move(parsed->second);
      }
      journal_hits_ = entries_.size();
      if (malformed_ > 0) {
        std::cerr << "[warn] " << path_ << ": ignored " << malformed_
                  << " malformed line(s); affected entries will be "
                     "re-measured\n";
      }
    }
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    std::cerr << "[warn] cannot open result journal " << path_ << ": "
              << std::strerror(errno) << "; results will not persist\n";
    return;
  }
  // Fail fast if another process already appends to this journal: two
  // writers would silently interleave (and double-repair) records. Fleet
  // workers get their own per-rank journal files precisely so they never
  // contend here.
  if (!try_lock_journal(fd_)) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(
        "result journal '" + path_ +
        "' is already open for appending in another process (advisory flock "
        "held); point REPRO_CACHE at a distinct file per process");
  }
  // Repair a torn tail (kill mid-write) by truncating it away - it was
  // dropped from memory above, so leaving the bytes would resurrect the
  // incomplete line on the next load. Stamp the header on new journals.
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (torn && ::ftruncate(fd_, keep) == 0) end = keep;
  if (end == 0) {
    const std::string header = std::string(kHeader) + '\n';
    write_all(fd_, header.data(), header.size());
  }
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<ResultEntry> ResultStore::find(const std::string& key) const {
  std::lock_guard lk(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void ResultStore::put(const std::string& key, const ResultEntry& e) {
  const std::string line = encode_line(key, e);
  std::lock_guard lk(mu_);
  entries_[key] = e;
  ++appended_;
  append_line(line);
}

void ResultStore::annotate(const std::string& note) {
  std::string line = "# " + note + '\n';
  // A newline inside the note would splice a bogus journal line.
  for (std::size_t i = 2; i + 1 < line.size(); ++i) {
    if (line[i] == '\n' || line[i] == '\r') line[i] = ' ';
  }
  std::lock_guard lk(mu_);
  append_line(line);
}

void ResultStore::append_line(const std::string& line) {
  if (fd_ < 0) return;
  if (!write_all(fd_, line.data(), line.size())) {
    std::cerr << "[warn] result journal append failed: " << std::strerror(errno)
              << '\n';
    return;
  }
  if (fsync_) ::fsync(fd_);
}

bool ResultStore::checkpoint() {
  std::lock_guard lk(mu_);
  if (path_.empty()) return true;
  const std::string tmp = path_ + ".tmp";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) {
    std::cerr << "[warn] checkpoint: cannot open " << tmp << ": "
              << std::strerror(errno) << '\n';
    return false;
  }
  std::string buf = std::string(kHeader) + '\n';
  for (const auto& [key, e] : entries_) buf += encode_line(key, e);
  bool ok = write_all(tfd, buf.data(), buf.size());
  if (ok && fsync_) ok = ::fsync(tfd) == 0;
  ::close(tfd);
  if (!ok || ::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::cerr << "[warn] checkpoint of " << path_ << " failed: "
              << std::strerror(errno) << "; journal left as-is\n";
    ::unlink(tmp.c_str());
    return false;
  }
  if (fsync_) fsync_parent_dir(path_);
  // The append descriptor still points at the replaced inode; reopen (and
  // re-take the writer lock, which lived on the old inode).
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ >= 0 && !try_lock_journal(fd_)) {
    std::cerr << "[warn] checkpoint: lost the journal lock on " << path_
              << " across the rename; another process opened it\n";
  }
  return true;
}

std::size_t ResultStore::preload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const bool torn = !text.empty() && text.back() != '\n';
  std::istringstream is(text);
  std::string line;
  std::size_t added = 0;
  std::lock_guard lk(mu_);
  while (std::getline(is, line)) {
    if (line.empty() || line.front() == '#') continue;
    if (torn && is.eof()) break;  // same discipline as open-time repair
    const auto parsed = decode_line(line);
    if (!parsed) continue;
    added += entries_.emplace(parsed->first, parsed->second).second ? 1 : 0;
  }
  return added;
}

MergeStats ResultStore::merge_from_file(const std::string& path) {
  MergeStats st;
  std::ifstream in(path, std::ios::binary);
  if (!in) return st;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  st.torn_tail = !text.empty() && text.back() != '\n';
  std::istringstream is(text);
  std::string line;
  std::lock_guard lk(mu_);
  // Batch durability: suppress the per-append fsync for the bulk of the
  // merge and sync once at the end. The caller unlinks the source journal
  // only after we return, so a crash mid-merge still has every entry in
  // the source file.
  const bool fsync_entries = fsync_;
  fsync_ = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (st.torn_tail && is.eof()) break;  // killed mid-append: drop the tail
    if (line.front() == '#') {
      // Preserve annotations (quarantine audit trails with their flight-dump
      // references); the schema header is the one comment that is not one.
      if (line.rfind("# ", 0) == 0) {
        append_line(line + '\n');
        ++st.comments;
      }
      continue;
    }
    auto parsed = decode_line(line);
    if (!parsed) {
      ++st.malformed;
      continue;
    }
    const auto it = entries_.find(parsed->first);
    if (it != entries_.end()) {
      // Dedup by job key: the canonical entry wins. A fenced worker that
      // finished a reassigned shard anyway lands here — for model-timed
      // measurements both values are identical (duplicates); a differing
      // wall-clock value is counted as a conflict but never replaces the
      // canonical one.
      ++(it->second == parsed->second ? st.duplicates : st.conflicts);
      continue;
    }
    append_line(encode_line(parsed->first, parsed->second));
    entries_.emplace(std::move(parsed->first), std::move(parsed->second));
    ++appended_;
    ++st.merged;
  }
  fsync_ = fsync_entries;
  if (fsync_ && fd_ >= 0) ::fsync(fd_);
  return st;
}

std::size_t ResultStore::size() const {
  std::lock_guard lk(mu_);
  return entries_.size();
}

std::size_t ResultStore::appended() const {
  std::lock_guard lk(mu_);
  return appended_;
}

}  // namespace indigo::sched
