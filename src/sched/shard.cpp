#include "sched/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace indigo::sched {

std::vector<ShardSpec> make_shard_plan(std::size_t cells,
                                       std::size_t target_shards) {
  std::vector<ShardSpec> plan;
  if (cells == 0) return plan;
  const std::size_t n = std::min(cells, std::max<std::size_t>(1, target_shards));
  plan.reserve(n);
  const std::size_t base = cells / n;
  const std::size_t extra = cells % n;  // the first `extra` shards get +1
  std::size_t at = 0;
  for (std::size_t s = 0; s < n; ++s) {
    ShardSpec spec;
    spec.id = static_cast<std::uint32_t>(s);
    spec.begin = at;
    at += base + (s < extra ? 1 : 0);
    spec.end = at;
    plan.push_back(spec);
  }
  return plan;
}

std::vector<ShardSpec> extract_shards(const JobGraph& graph,
                                      std::size_t target_shards) {
  std::vector<std::int64_t> tags;
  for (JobId j = 0; j < graph.size(); ++j) {
    const std::int64_t c = graph.job(j).shard_cell;
    if (c >= 0) tags.push_back(c);
  }
  std::sort(tags.begin(), tags.end());
  for (std::size_t i = 0; i < tags.size(); ++i) {
    if (tags[i] != static_cast<std::int64_t>(i)) {
      throw std::invalid_argument(
          "extract_shards: shard_cell tags must be the dense range 0..n-1 "
          "(got " + std::to_string(tags[i]) + " at position " +
          std::to_string(i) + ")");
    }
  }
  return make_shard_plan(tags.size(), target_shards);
}

}  // namespace indigo::sched
