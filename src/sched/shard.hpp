// Sweep runtime, part 4: shard extraction for multi-process fleets.
//
// A fleet run (src/fleet) splits the sweep's independent measurement cells
// across worker *processes*. Closures cannot cross a process boundary, so a
// shard is described declaratively: a contiguous [begin, end) range over the
// deterministic cell enumeration both sides reconstruct from the registry
// (same model/algo filter, same graph order). Jobs opt into sharding by
// tagging themselves with their cell index (Job::shard_cell); infrastructure
// jobs (materialize, aggregate, report) stay untagged and are rebuilt by
// every worker locally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sched/job_graph.hpp"

namespace indigo::sched {

/// One contiguous slice of the sweep's cell enumeration, the unit of lease
/// assignment in a fleet run.
struct ShardSpec {
  std::uint32_t id = 0;
  std::size_t begin = 0;  // first cell index (inclusive)
  std::size_t end = 0;    // past-the-end cell index

  [[nodiscard]] std::size_t size() const { return end - begin; }
  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Splits `cells` cell indices into at most `target_shards` contiguous
/// shards of near-equal size (larger shards first, sizes differ by at most
/// one). Returns an empty plan for zero cells; target_shards is clamped to
/// at least 1.
std::vector<ShardSpec> make_shard_plan(std::size_t cells,
                                       std::size_t target_shards);

/// Extracts the shard plan from a built sweep JobGraph: collects every job
/// tagged with a shard_cell, validates that the tags are exactly the dense
/// range 0..n-1 (the deterministic enumeration contract a worker process
/// relies on to rebuild the same cells), and partitions them with
/// make_shard_plan. Throws std::invalid_argument on duplicate or non-dense
/// tags.
std::vector<ShardSpec> extract_shards(const JobGraph& graph,
                                      std::size_t target_shards);

}  // namespace indigo::sched
