#include "sched/executor.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <thread>
#include <utility>

#include "obs/counters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace indigo::sched {
namespace {

using Clock = std::chrono::steady_clock;

/// Stable per-job trace id: FNV-1a of the job name, so the same job carries
/// the same id across attempts, workers, processes, and resumed runs —
/// obs_timeline and external trace mergers can join on it.
std::string job_trace_id(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Handles resolved once; the obs registry lookup takes a mutex.
struct SchedCounters {
  obs::Counter& jobs;
  obs::Counter& done;
  obs::Counter& steals;
  obs::Counter& retries;
  obs::Counter& timeouts;
  obs::Counter& quarantined;
  obs::Counter& exclusive_jobs;
  obs::Distribution& queue_depth;

  static SchedCounters& instance() {
    auto& reg = obs::CounterRegistry::instance();
    static SchedCounters c{reg.counter("sched.jobs"),
                           reg.counter("sched.done"),
                           reg.counter("sched.steals"),
                           reg.counter("sched.retries"),
                           reg.counter("sched.timeouts"),
                           reg.counter("sched.quarantined"),
                           reg.counter("sched.exclusive_jobs"),
                           reg.distribution("sched.queue_depth")};
    return c;
  }
};

}  // namespace

struct Executor::RunState {
  const JobGraph* graph = nullptr;
  std::string proc_label;  // process-level worker id (fleet rank or pid)

  std::mutex mu;
  std::condition_variable work_cv;  // workers wait here for jobs
  std::condition_variable done_cv;  // run() and the monitor wait here

  // Guarded by mu:
  std::vector<JobStatus> status;
  std::vector<std::vector<JobId>> dependents;
  std::vector<int> unmet;
  std::vector<std::deque<JobId>> queues;  // one per worker
  using Delayed = std::pair<Clock::time_point, JobId>;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>> delayed;
  std::size_t terminal = 0;
  std::size_t running = 0;
  bool stop_monitor = false;

  // The execution-class lane: ModelTimed shared, WallClock unique.
  std::shared_mutex lane;

  // Always-on tallies, served by progress() even with the obs layer off.
  std::atomic<std::uint64_t> steals{0}, retries{0}, timeouts{0},
      quarantined{0};

  Clock::time_point t0;

  [[nodiscard]] std::size_t ready_depth_locked() const {
    std::size_t n = delayed.size();
    for (const auto& q : queues) n += q.size();
    return n;
  }

  [[nodiscard]] Progress progress_locked() const {
    Progress p;
    p.total = graph->size();
    p.done = terminal;
    p.running = running;
    p.quarantined = quarantined.load(std::memory_order_relaxed);
    p.queue_depth = ready_depth_locked();
    p.steals = steals.load(std::memory_order_relaxed);
    p.retries = retries.load(std::memory_order_relaxed);
    p.timeouts = timeouts.load(std::memory_order_relaxed);
    p.elapsed_s = std::chrono::duration<double>(Clock::now() - t0).count();
    p.eta_s = p.done > 0 ? p.elapsed_s * static_cast<double>(p.total - p.done) /
                               static_cast<double>(p.done)
                         : -1;
    return p;
  }

  /// The "executor" telemetry section: live Progress plus the jobs in a
  /// non-trivial state (running, retried, quarantined), so a snapshot taken
  /// moments before a kill names exactly what was in flight. Runs on the
  /// telemetry publisher thread; rs.mu serializes it against the workers.
  [[nodiscard]] std::string telemetry_section() {
    std::lock_guard lk(mu);
    const Progress p = progress_locked();
    obs::JsonObject o;
    o.field("worker", std::string_view(proc_label))
        .field("jobs", static_cast<std::uint64_t>(p.total))
        .field("done", static_cast<std::uint64_t>(p.done))
        .field("running", static_cast<std::uint64_t>(p.running))
        .field("quarantined", static_cast<std::uint64_t>(p.quarantined))
        .field("queue_depth", static_cast<std::uint64_t>(p.queue_depth))
        .field("steals", p.steals)
        .field("retries", p.retries)
        .field("timeouts", p.timeouts)
        .field("elapsed_s", p.elapsed_s)
        .field("eta_s", p.eta_s);
    constexpr std::size_t kMaxListed = 32;
    std::string active = "[";
    std::string failed = "[";
    std::size_t n_active = 0;
    std::size_t n_failed = 0;
    for (JobId j = 0; j < status.size(); ++j) {
      const JobStatus& st = status[j];
      if (st.state == JobState::Running && n_active < kMaxListed) {
        if (n_active++ > 0) active += ',';
        active += '"' + obs::json_escape(graph->job(j).name) + '"';
      }
      if ((st.state == JobState::Quarantined ||
           (st.failure != FailureKind::None && st.state != JobState::Done)) &&
          n_failed < kMaxListed) {
        if (n_failed++ > 0) failed += ',';
        obs::JsonObject f;
        f.field("job", std::string_view(graph->job(j).name))
            .field("state", std::string_view(to_string(st.state)))
            .field("failure", std::string_view(to_string(st.failure)))
            .field("attempts", static_cast<std::uint64_t>(st.attempts));
        if (!st.flight_dump.empty()) {
          f.field("flight_dump", std::string_view(st.flight_dump));
        }
        failed += f.str();
      }
    }
    active += ']';
    failed += ']';
    o.field_raw("active_jobs", active).field_raw("failed_jobs", failed);
    return o.str();
  }
};

Executor::Executor(ExecutorOptions opts)
    : opts_(std::move(opts)), workers_(resolve_workers(opts_.num_workers)) {}

int Executor::resolve_workers(int requested) {
  if (requested > 0) return std::min(requested, 256);
  if (const char* env = std::getenv("INDIGO_SCHED_WORKERS")) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, 256);
  }
  // Default: one worker per hardware thread, capped at 8. Oversubscribing a
  // small box only adds context-switch overhead to the CPU-bound ModelTimed
  // jobs (a 1-core host with the old floor of 2 measured 0.985x, i.e. a
  // slowdown, in BENCH_sweep.json).
  const unsigned hw = std::thread::hardware_concurrency();
  const int fit = std::max(1, static_cast<int>(std::min(hw, 8u)));
  if (hw != 0 && hw < 8u && obs::enabled()) {
    static obs::Counter& clamped =
        obs::CounterRegistry::instance().counter("sched.workers_clamped");
    clamped.add(1);
  }
  return fit;
}

std::vector<JobStatus> Executor::run(const JobGraph& graph) {
  const std::size_t n = graph.size();
  RunState rs;
  rs.graph = &graph;
  rs.proc_label = opts_.worker_label.empty()
                      ? "pid" + std::to_string(::getpid())
                      : opts_.worker_label;
  rs.status.assign(n, JobStatus{});
  rs.dependents.assign(n, {});
  rs.unmet.assign(n, 0);
  rs.queues.assign(static_cast<std::size_t>(workers_), {});
  rs.t0 = Clock::now();
  for (JobId j = 0; j < n; ++j) {
    for (JobId on : graph.deps(j)) {
      rs.dependents[on].push_back(j);
      ++rs.unmet[j];
    }
  }
  // Kahn pass: every job must be reachable from the zero-dep frontier.
  {
    std::vector<int> unmet = rs.unmet;
    std::vector<JobId> order;
    order.reserve(n);
    for (JobId j = 0; j < n; ++j) {
      if (unmet[j] == 0) order.push_back(j);
    }
    for (std::size_t k = 0; k < order.size(); ++k) {
      for (JobId d : rs.dependents[order[k]]) {
        if (--unmet[d] == 0) order.push_back(d);
      }
    }
    if (order.size() != n) {
      throw std::invalid_argument("Executor::run: dependency cycle");
    }
  }
  if (n == 0) return {};
  SchedCounters::instance().jobs.add(n);

  obs::Span span("executor.run", "sched");
  span.arg("jobs", static_cast<double>(n));
  span.arg("workers", static_cast<double>(workers_));
  span.arg("proc", rs.proc_label);
  // The "executor" telemetry section lives exactly as long as this run's
  // RunState (the callback captures it by reference).
  obs::telemetry_register_section(
      "executor", [&rs] { return rs.telemetry_section(); });
  struct SectionGuard {
    ~SectionGuard() { obs::telemetry_unregister_section("executor"); }
  } section_guard;

  // Seed the frontier across the workers' deques. Jobs without an affinity
  // key go round-robin; jobs sharing one are steered to a common home
  // worker (first-seen affinity takes the next round-robin slot), so a
  // sweep's same-graph cells land on one thread and its per-thread caches
  // (arena free-list shapes, GraphResidency copies) stay warm. Deterministic
  // for a fixed job order and worker count; stealing may still rebalance.
  {
    int w = 0;
    std::unordered_map<std::int64_t, std::size_t> home;
    for (JobId j = 0; j < n; ++j) {
      if (rs.unmet[j] != 0) continue;
      const std::int64_t aff = graph.job(j).affinity;
      std::size_t target;
      if (aff < 0) {
        target = static_cast<std::size_t>(w++ % workers_);
      } else if (auto it = home.find(aff); it != home.end()) {
        target = it->second;
      } else {
        target = static_cast<std::size_t>(w++ % workers_);
        home.emplace(aff, target);
      }
      rs.queues[target].push_back(j);
    }
  }

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    pool.emplace_back([this, &rs, w] { worker_loop(rs, w); });
  }
  std::thread monitor;
  if (opts_.on_progress) {
    monitor = std::thread([this, &rs, n] {
      std::unique_lock lk(rs.mu);
      while (!rs.stop_monitor && rs.terminal < n) {
        rs.done_cv.wait_for(
            lk, std::chrono::duration<double>(
                    std::max(0.05, opts_.progress_interval_s)));
        if (rs.stop_monitor || rs.terminal >= n) break;
        const Progress p = rs.progress_locked();
        lk.unlock();
        opts_.on_progress(p);
        lk.lock();
      }
    });
  }
  {
    std::unique_lock lk(rs.mu);
    rs.done_cv.wait(lk, [&] { return rs.terminal == n; });
    rs.stop_monitor = true;
  }
  rs.work_cv.notify_all();
  rs.done_cv.notify_all();
  for (std::thread& t : pool) t.join();
  if (monitor.joinable()) monitor.join();
  if (opts_.on_progress) {
    std::lock_guard lk(rs.mu);
    opts_.on_progress(rs.progress_locked());
  }
  span.arg("steals", static_cast<double>(
                         rs.steals.load(std::memory_order_relaxed)));
  span.arg("retries", static_cast<double>(
                          rs.retries.load(std::memory_order_relaxed)));
  span.arg("timeouts", static_cast<double>(
                           rs.timeouts.load(std::memory_order_relaxed)));
  span.arg("quarantined", static_cast<double>(
                              rs.quarantined.load(std::memory_order_relaxed)));
  span.end();
  return std::move(rs.status);
}

void Executor::worker_loop(RunState& rs, int w) {
  const std::size_t n = rs.graph->size();
  std::unique_lock lk(rs.mu);
  while (rs.terminal < n) {
    JobId id = kInvalidJob;
    auto& own = rs.queues[static_cast<std::size_t>(w)];
    if (!own.empty()) {
      id = own.front();
      own.pop_front();
    } else {
      for (int k = 1; k < workers_ && id == kInvalidJob; ++k) {
        auto& victim = rs.queues[static_cast<std::size_t>((w + k) % workers_)];
        if (!victim.empty()) {
          id = victim.back();
          victim.pop_back();
          rs.steals.fetch_add(1, std::memory_order_relaxed);
          SchedCounters::instance().steals.add(1);
        }
      }
    }
    if (id == kInvalidJob && !rs.delayed.empty()) {
      const auto now = Clock::now();
      if (rs.delayed.top().first <= now) {
        id = rs.delayed.top().second;
        rs.delayed.pop();
      } else {
        rs.work_cv.wait_until(lk, rs.delayed.top().first);
        continue;
      }
    }
    if (id == kInvalidJob) {
      rs.work_cv.wait(lk);
      continue;
    }
    SchedCounters::instance().queue_depth.record(
        static_cast<double>(rs.ready_depth_locked()));
    rs.status[id].state = JobState::Running;
    ++rs.running;
    lk.unlock();
    execute(rs, w, id);
    lk.lock();
    --rs.running;
  }
  rs.work_cv.notify_all();  // cascade shutdown to still-waiting workers
}

void Executor::execute(RunState& rs, int w, JobId id) {
  const Job& job = rs.graph->job(id);
  auto token = std::make_shared<std::atomic<bool>>(false);
  int attempt = 0;
  {
    std::lock_guard lk(rs.mu);
    attempt = rs.status[id].attempts++;
  }
  obs::Span span("job", "sched");
  span.arg("job", job.name);
  span.arg("class", std::string(to_string(job.exec_class)));
  span.arg("attempt", static_cast<double>(attempt));
  span.arg("worker", static_cast<double>(w));
  span.arg("proc", rs.proc_label);
  if (span.active()) span.arg("trace_id", job_trace_id(job.name));

  const JobContext ctx{id, attempt, token};
  FailureKind failure = FailureKind::None;
  std::string error;
  const auto t0 = Clock::now();
  {
    // The lane: a WallClock job owns the machine; ModelTimed jobs share it.
    std::shared_lock<std::shared_mutex> shared(rs.lane, std::defer_lock);
    std::unique_lock<std::shared_mutex> unique(rs.lane, std::defer_lock);
    if (job.exec_class == ExecClass::WallClock) {
      unique.lock();
      SchedCounters::instance().exclusive_jobs.add(1);
    } else {
      shared.lock();
    }

    if (job.timeout_s > 0) {
      // Deadline attempts run on a helper so an expired one can be
      // abandoned. The helper owns copies of everything it touches (the
      // detach case must not reference worker-stack state).
      struct Attempt {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        FailureKind failure = FailureKind::None;
        std::string error;
      };
      auto att = std::make_shared<Attempt>();
      auto work = job.work;
      std::thread helper([att, work = std::move(work), ctx] {
        FailureKind f = FailureKind::None;
        std::string e;
        try {
          work(ctx);
        } catch (const std::exception& ex) {
          f = FailureKind::Exception;
          e = ex.what();
        } catch (...) {
          f = FailureKind::Exception;
          e = "unknown exception";
        }
        std::lock_guard g(att->m);
        att->done = true;
        att->failure = f;
        att->error = std::move(e);
        att->cv.notify_all();
      });
      std::unique_lock al(att->m);
      const bool finished =
          att->cv.wait_for(al, std::chrono::duration<double>(job.timeout_s),
                           [&] { return att->done; });
      if (finished) {
        al.unlock();
        helper.join();
        failure = att->failure;
        error = att->error;
      } else {
        al.unlock();
        token->store(true, std::memory_order_relaxed);
        helper.detach();
        failure = FailureKind::Timeout;
        error = "deadline of " + std::to_string(job.timeout_s) + "s expired";
        rs.timeouts.fetch_add(1, std::memory_order_relaxed);
        SchedCounters::instance().timeouts.add(1);
      }
    } else {
      try {
        job.work(ctx);
      } catch (const std::exception& ex) {
        failure = FailureKind::Exception;
        error = ex.what();
      } catch (...) {
        failure = FailureKind::Exception;
        error = "unknown exception";
      }
    }
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  span.arg("outcome", std::string(failure == FailureKind::None
                                      ? "ok"
                                      : to_string(failure)));
  span.end();
  finish(rs, w, id, failure, error, secs);
}

void Executor::finish(RunState& rs, int w, JobId id, FailureKind failure,
                      const std::string& error, double attempt_s) {
  const Job& finished_job = rs.graph->job(id);
  std::string dump_ref;
  if (failure != FailureKind::None && obs::flight_enabled()) {
    // Snapshot the rings while the failure is still the newest thing in
    // them. Only this job's attempt counter decides retry vs quarantine,
    // and no other worker can run this job concurrently, so the peek
    // outside the long-held lock below is race-free.
    bool will_retry = false;
    {
      std::lock_guard lk(rs.mu);
      will_retry = rs.status[id].attempts <= finished_job.max_retries;
    }
    obs::flight_note(will_retry ? "sched.retry" : "sched.quarantine", "sched",
                     finished_job.name);
    const char* reason = will_retry ? "retry"
                         : failure == FailureKind::Timeout ? "timeout"
                                                           : "quarantine";
    if (obs::flight_dump(reason)) dump_ref = obs::flight_dump_path();
  }
  std::lock_guard lk(rs.mu);
  JobStatus& st = rs.status[id];
  if (!dump_ref.empty()) st.flight_dump = std::move(dump_ref);
  st.run_seconds += attempt_s;
  if (failure == FailureKind::None) {
    st.state = JobState::Done;
    st.failure = FailureKind::None;
    st.error.clear();
    SchedCounters::instance().done.add(1);
  } else {
    st.failure = failure;
    st.error = error;
    const Job& job = rs.graph->job(id);
    if (st.attempts <= job.max_retries) {
      // Retry with linear backoff; the job goes back through the delayed
      // heap so the worker is free for other work meanwhile.
      rs.retries.fetch_add(1, std::memory_order_relaxed);
      SchedCounters::instance().retries.add(1);
      st.state = JobState::Pending;
      rs.delayed.emplace(
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 job.retry_backoff_s * st.attempts)),
          id);
      rs.work_cv.notify_all();
      return;
    }
    st.state = JobState::Quarantined;
    rs.quarantined.fetch_add(1, std::memory_order_relaxed);
    SchedCounters::instance().quarantined.add(1);
  }
  ++rs.terminal;
  // Release dependents onto the finishing worker's own deque (locality);
  // idle workers will steal from its back.
  for (JobId d : rs.dependents[id]) {
    if (--rs.unmet[d] == 0) {
      rs.queues[static_cast<std::size_t>(w)].push_back(d);
    }
  }
  rs.work_cv.notify_all();
  if (rs.terminal == rs.graph->size()) rs.done_cv.notify_all();
}

}  // namespace indigo::sched
